"""Per-token stage cost model for the unified 6N-stage pipeline.

This module turns the hardware characterisation (crossbar cycle counts, SFU
throughput, NoC bandwidth, per-operation energies) and the mapping summary
(cores per layer, average hop distance between communicating cores) into the
two quantities the pipeline engines need:

* the **stage interval** -- the time one pipeline stage needs per token, whose
  maximum over the six stages sets the pipeline's steady-state token rate, and
* the **per-token energy breakdown** -- compute / on-chip memory /
  communication joules for one token traversing one transformer block.

The model also supports two ablation knobs used by Fig. 15 and Fig. 21:
``cim_enabled=False`` charges a per-use SRAM weight read plus digital-MAC
energy instead of in-situ CIM MACs (the "TGP without CIM" configuration), and
``lut_optimized=True`` applies the 10% compute-energy reduction the paper
reports for LUT-based crossbars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..hardware.config import WaferConfig
from ..hardware.core import CIMCore
from ..hardware.energy import EnergyModel
from ..models.architectures import ModelArch
from ..models.layers import build_block_layers
from ..models.pipeline_stages import StageKind, StageSpec, build_stage_specs
from ..results import EnergyBreakdown


@dataclass
class StageCost:
    """Latency and energy of one stage processing one token."""

    kind: StageKind
    latency_s: float
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)


@dataclass
class TokenCostModel:
    """Analytical per-token cost model for one transformer block."""

    arch: ModelArch
    wafer_config: WaferConfig
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    #: average mesh hops between cores of adjacent stages (mapping quality)
    average_hops: float = 2.0
    #: average fraction of inter-stage transfers that cross a die boundary
    die_crossing_fraction: float = 0.05
    #: whether weights are consumed in-situ (CIM) or read out per use
    cim_enabled: bool = True
    #: apply the LUT-based crossbar optimisation (~10% compute energy saving)
    lut_optimized: bool = False
    #: scale on the inter-stage link bandwidth (<1 models non-wafer packaging
    #: whose die-to-die links are slower than stitched on-wafer links)
    transfer_bandwidth_scale: float = 1.0
    #: when ``cim_enabled`` is False, how many tokens share one SRAM weight
    #: read.  Sequence-grained scheduling amortises the read over a whole
    #: sequence; token-grained scheduling destroys that reuse (=1), which is
    #: the energy blow-up the Fig. 15 red bars illustrate.
    weight_reuse_tokens: float = 1.0

    def __post_init__(self) -> None:
        core_config = self.wafer_config.die.core
        self._core = CIMCore(core_id=-1, config=core_config, energy=self.energy_model)
        self._stage_specs = build_stage_specs(self.arch)
        self._layers = build_block_layers(self.arch)
        capacity = core_config.weight_capacity_bytes
        self._cores_per_layer = {
            layer.kind.value: layer.num_cores(capacity) for layer in self._layers
        }
        self._link_bandwidth = (
            core_config.link_width_bits / 8.0
        ) * 1e9 * self.transfer_bandwidth_scale  # links run at 1 GHz
        self._crossbar = core_config.crossbar

    # ------------------------------------------------------------------ stages

    def stage_specs(self) -> list[StageSpec]:
        return list(self._stage_specs)

    def _weighted_stage_latency(self, spec: StageSpec) -> float:
        """Latency of a weighted GEMV stage for one token."""
        if spec.kind is StageKind.QKV_GENERATION:
            input_dim = self.arch.hidden_size
            output_dim = self.arch.q_dim + 2 * self.arch.kv_dim
            cores = self._cores_per_layer["qkv_projection"]
        elif spec.kind is StageKind.PROJECTION:
            input_dim = self.arch.q_dim
            output_dim = self.arch.hidden_size
            cores = self._cores_per_layer["output_projection"]
        else:  # FFN: up + down back to back on their respective cores
            up_latency = self._gemv_latency(
                self.arch.hidden_size,
                (self.arch.ffn_matrices - 1) * self.arch.ffn_hidden_size,
                self._cores_per_layer["ffn_up"],
            )
            down_latency = self._gemv_latency(
                self.arch.ffn_hidden_size,
                self.arch.hidden_size,
                self._cores_per_layer["ffn_down"],
            )
            return max(up_latency, down_latency)
        return self._gemv_latency(input_dim, output_dim, cores)

    def _gemv_latency(self, input_dim: int, output_dim: int, cores: int) -> float:
        per_core_output = max(1, math.ceil(output_dim / max(1, cores)))
        return self._core.gemv_cost(input_dim, per_core_output).latency_s

    def _attention_stage_latency(self, spec: StageSpec, context: int) -> float:
        """Latency of the score / context GEMVs against the KV cache."""
        crossbar = self._crossbar
        block_rows = crossbar.rows // crossbar.attention_logical_blocks
        if spec.kind is StageKind.SCORE:
            # K stored head_dim (rows) x tokens (cols); all token blocks of a
            # head compute in parallel across crossbars.
            active_rows = min(self.arch.head_dim, crossbar.rows)
        else:
            # V stored tokens (rows) x head_dim (cols); rows grow with context
            # but are spread over logical blocks / crossbars.
            per_crossbar_tokens = crossbar.attention_logical_blocks * block_rows
            active_rows = min(max(1, context), per_crossbar_tokens, crossbar.rows)
        row_groups = math.ceil(active_rows / crossbar.rows_active_per_cycle)
        cycles = crossbar.activation_bits * row_groups
        return cycles * crossbar.cycle_time_s

    def _sfu_stage_latency(self, context: int) -> float:
        # Softmax of one head's scores on its KV core's SFU; heads in parallel.
        return self._core.sfu_cost(max(1, context)).latency_s

    def stage_latency(self, kind: StageKind, context: int) -> float:
        """Latency of one stage processing one token at a given context length."""
        spec = next(s for s in self._stage_specs if s.kind is kind)
        if kind in (StageKind.QKV_GENERATION, StageKind.PROJECTION, StageKind.FFN):
            compute = self._weighted_stage_latency(spec)
        elif kind in (StageKind.SCORE, StageKind.CONTEXT):
            compute = self._attention_stage_latency(spec, context)
        else:
            compute = self._sfu_stage_latency(context)
        transfer = spec.output_bytes_per_token(context) / self._link_bandwidth
        if not self.cim_enabled and spec.is_weighted:
            # Weights must stream from SRAM into the digital datapath; the
            # stage becomes bandwidth-bound on the weight read.  Coarser
            # scheduling granularities amortise the read over several tokens.
            weight_read = (
                spec.weight_bytes
                / max(1, self._cores_per_layer_for(spec))
                / (self._link_bandwidth * 4)
                / max(1.0, self.weight_reuse_tokens)
            )
            compute = max(compute, weight_read)
        return max(compute, transfer)

    def _cores_per_layer_for(self, spec: StageSpec) -> int:
        if spec.kind is StageKind.QKV_GENERATION:
            return self._cores_per_layer["qkv_projection"]
        if spec.kind is StageKind.PROJECTION:
            return self._cores_per_layer["output_projection"]
        if spec.kind is StageKind.FFN:
            return self._cores_per_layer["ffn_up"] + self._cores_per_layer["ffn_down"]
        return 1

    def stage_interval(self, context: int) -> float:
        """The pipeline's per-token interval: the slowest stage's latency."""
        return max(self.stage_latency(kind, context) for kind in StageKind)

    def token_pipeline_latency(self, context: int) -> float:
        """End-to-end latency of one token through all 6N stages."""
        per_block = sum(self.stage_latency(kind, context) for kind in StageKind)
        return per_block * self.arch.num_blocks

    # ------------------------------------------------------------------ energy

    def token_energy(self, context: int) -> EnergyBreakdown:
        """Energy for one token traversing the *whole model* (all blocks)."""
        arch = self.arch
        em = self.energy_model
        ctx = max(1, context)

        weight_macs = float(arch.block_weight_params)
        attention_macs = float(2 * arch.num_heads * arch.head_dim * ctx)
        total_macs = weight_macs + attention_macs

        if self.cim_enabled:
            compute = total_macs * em.cim_mac_j(self._crossbar)
            weight_read = 0.0
        else:
            compute = total_macs * em.digital_mac_j
            weight_read = (
                arch.block_weight_bytes
                * em.non_cim_weight_read_j_per_byte
                / max(1.0, self.weight_reuse_tokens)
            )
        if self.lut_optimized:
            compute *= 0.9

        sfu_elements = sum(
            spec.sfu_elements_per_token(ctx) for spec in self._stage_specs
        )
        compute += sfu_elements * em.sfu_j_per_element

        # On-chip memory: staging activations through input/output buffers and
        # appending this token's K/V entries.
        activation_bytes = sum(
            spec.output_bytes_per_token(ctx) for spec in self._stage_specs
        )
        kv_write_bytes = arch.kv_bytes_per_token_per_block
        on_chip = (
            activation_bytes * (em.sram_write_j_per_byte + em.sram_read_j_per_byte)
            + kv_write_bytes * em.sram_write_j_per_byte
            + weight_read
        )

        # Communication: inter-stage activations travel average_hops mesh hops.
        communication = em.noc_transfer_energy_j(
            activation_bytes,
            hops=self.average_hops,
            die_crossings=self.average_hops * self.die_crossing_fraction,
        )

        per_block = EnergyBreakdown(
            compute_j=compute,
            on_chip_memory_j=on_chip,
            off_chip_memory_j=0.0,
            communication_j=communication,
        )
        return per_block.scaled(arch.num_blocks)

    # ------------------------------------------------------------------ report

    def stage_report(self, context: int) -> list[StageCost]:
        """Per-stage latency report (energy reported at block granularity)."""
        report = []
        for kind in StageKind:
            report.append(
                StageCost(kind=kind, latency_s=self.stage_latency(kind, context))
            )
        return report
