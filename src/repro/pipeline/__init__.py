"""Pipeline strategies: token-grained, sequence-grained and blocked TGP."""

from .blocked import BLOCKING_OVERHEAD, BlockedTokenGrainedPipeline
from .engine import EpochRecord, PipelineConfig, PipelineEngine
from .sequence_grained import SequenceGrainedPipeline
from .stages import StageCost, TokenCostModel
from .tgp import TokenGrainedPipeline

__all__ = [
    "TokenCostModel",
    "StageCost",
    "PipelineConfig",
    "PipelineEngine",
    "EpochRecord",
    "TokenGrainedPipeline",
    "SequenceGrainedPipeline",
    "BlockedTokenGrainedPipeline",
    "BLOCKING_OVERHEAD",
]
