"""Token-grained pipelining with blocking for encoder-style attention (§4.2.2).

Bidirectional and prefix masks require each token to attend to *subsequent*
tokens, so the attention stages cannot proceed until the whole sequence's K/V
entries exist.  The paper's adaptation keeps every non-attention stage at token
granularity and lets only the attention stages fall back to sequence
granularity ("TGP with block").  Bubbles then appear solely at sequence
partitioning boundaries: a newly scheduled sequence that is *longer* than the
longest sequence seen so far stalls the attention stages by the length
difference.

For decoder-only models the blocked variant costs about 5% relative to plain
TGP (Section 6.4), which this model reproduces via a fixed blocking overhead.

Admission order (fcfs / wfq / priority) and the sub-epoch split boundary are
inherited unchanged from :class:`~repro.pipeline.engine.PipelineEngine` — the
only strategy-specific state here is the longest-sequence watermark, which is
why :meth:`planned_utilization` must stay side-effect-free: the shared
``_plan_epoch`` may evaluate (and then truncate) an epoch at a policy-chosen
arrival boundary before it commits.
"""

from __future__ import annotations

from ..models.architectures import AttentionMask
from ..workload.requests import Sequence
from .engine import PipelineEngine

#: relative throughput penalty of blocking measured on decoder-only models
BLOCKING_OVERHEAD = 0.05


class BlockedTokenGrainedPipeline(PipelineEngine):
    """TGP with sequence-granular attention stages (encoder support)."""

    name = "ouroboros-tgp-blocked"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._longest_seen = 0

    def epoch_utilization(
        self,
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
    ) -> float:
        utilization, self._longest_seen = self._utilization_and_watermark(
            prefill_segments, decode_sequences
        )
        return utilization

    def planned_utilization(
        self,
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
    ) -> float:
        # Planning must not advance the longest-sequence watermark: a plan
        # may be truncated and the epoch re-evaluated at close time, which is
        # when the watermark commits (via epoch_utilization above).
        utilization, _ = self._utilization_and_watermark(
            prefill_segments, decode_sequences
        )
        return utilization

    def _utilization_and_watermark(
        self,
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
    ) -> tuple[float, int]:
        longest_seen = self._longest_seen
        in_flight = 0.0
        bubble_tokens = 0.0
        epoch_tokens = float(decode_sequences)
        for sequence, count in prefill_segments:
            in_flight += min(self.depth, count + sequence.remaining_prefill)
            epoch_tokens += count
            total_length = sequence.request.prefill_length
            if total_length > longest_seen:
                # The attention stages stall for the length differential when a
                # longer-than-ever sequence enters (Section 4.2.2).
                bubble_tokens += total_length - longest_seen
                longest_seen = total_length
        in_flight += decode_sequences
        if in_flight <= 0:
            return 0.0, longest_seen
        occupancy = min(1.0, in_flight / self.depth)
        if epoch_tokens + bubble_tokens > 0:
            bubble_factor = epoch_tokens / (epoch_tokens + bubble_tokens)
        else:
            bubble_factor = 1.0
        utilization = occupancy * bubble_factor * (1.0 - BLOCKING_OVERHEAD)
        if self.arch.attention_mask is AttentionMask.CAUSAL:
            # Decoder-only models never actually need to wait for later tokens;
            # only the fixed blocking overhead applies.
            utilization = occupancy * (1.0 - BLOCKING_OVERHEAD)
        return utilization, longest_seen
