"""Sequence-grained pipelining baseline (Fig. 5a).

Conventional pipelines schedule whole sequences: each stage works on a
different request, so a stage holding a 2048-token prefill keeps its neighbours
waiting while a stage holding a single decode token idles.  Two effects reduce
utilisation relative to TGP:

* **load imbalance** -- concurrently in-flight work items have very different
  sizes (prefills of varying length mixed with single-token decode steps), and
  the pipeline advances at the pace of the largest item; and
* **occupancy** -- each sequence occupies exactly one stage, so at most one
  work item per active sequence is in flight.

Both effects are modelled per epoch from the actual set of in-flight items.
"""

from __future__ import annotations

from ..workload.requests import Sequence
from .engine import PipelineEngine


class SequenceGrainedPipeline(PipelineEngine):
    """Baseline pipeline with sequences as the scheduling unit."""

    name = "ouroboros-seq-grained"

    def epoch_utilization(
        self,
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
    ) -> float:
        # Work-item sizes currently in flight: one item per prefilling
        # sequence (its remaining prompt chunk) and one single-token item per
        # decoding sequence.
        item_sizes: list[float] = []
        for sequence, count in prefill_segments:
            item_sizes.append(float(count + sequence.remaining_prefill))
        item_sizes.extend([1.0] * decode_sequences)
        if not item_sizes:
            return 0.0
        occupancy = min(1.0, len(item_sizes) / self.depth)
        mean_size = sum(item_sizes) / len(item_sizes)
        variance = sum((size - mean_size) ** 2 for size in item_sizes) / len(item_sizes)
        std_size = variance ** 0.5
        # Head-of-line blocking behind oversized items grows with the spread of
        # in-flight item sizes; a coefficient-of-variation penalty reproduces
        # the 1.5x-3x bubbles the paper attributes to sequence granularity
        # without the unbounded worst case of a pure mean/max model (stages
        # buffer work, so a single long prefill does not stall everything).
        imbalance = mean_size / (mean_size + std_size) if mean_size > 0 else 1.0
        return occupancy * imbalance
