"""Token-grained pipelining (Section 4.2.1).

TGP makes the single token the unit of pipeline scheduling.  Because every
stage then processes exactly one token, the per-stage work is uniform and the
only source of under-utilisation is an insufficient number of tokens in
flight: prefill sequences can stream their tokens back-to-back (the causal
mask lets token *t* attend to tokens ``< t`` that are already one stage ahead),
while each decode sequence keeps exactly one token in flight (autoregressive
dependency).  Utilisation is therefore

    min(1, (sum of streamable prefill tokens + #decode sequences) / 6N)

which is the quantity the paper's 13B-vs-32B discussion revolves around: when
the KV cache can hold fewer concurrent sequences than the pipeline has stages,
decode-phase utilisation drops below one.
"""

from __future__ import annotations

from ..workload.requests import Sequence
from .engine import PipelineEngine


class TokenGrainedPipeline(PipelineEngine):
    """The paper's TGP strategy."""

    name = "ouroboros-tgp"

    def epoch_utilization(
        self,
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
    ) -> float:
        in_flight = 0.0
        for sequence, count in prefill_segments:
            # A prefilling sequence keeps streaming into the pipeline beyond
            # this epoch's chunk, so its in-flight contribution is bounded by
            # the pipeline depth, not by the chunk size.
            in_flight += min(self.depth, count + sequence.remaining_prefill)
        in_flight += decode_sequences
        if in_flight <= 0:
            return 0.0
        return min(1.0, in_flight / self.depth)
