"""Shared pipeline simulation engine.

The engine serves a request trace on the wafer by advancing the admitted
sequences in *epochs*: every epoch each active sequence processes up to
``chunk_tokens`` tokens (prefill tokens stream back-to-back; decode tokens are
one per pipeline traversal).  The wall-clock cost of an epoch is

    epoch_time = processed_tokens * stage_interval / utilization

where ``stage_interval`` is the slowest of the six stage latencies at the
epoch's average context length and ``utilization`` is supplied by the concrete
pipeline strategy (token-grained, sequence-grained or blocked).  Energy is
accumulated from the per-token cost model, and KV-cache growth / eviction is
driven through the inter-sequence scheduler so that thrashing shows up as
recomputed tokens and extra time.

Traces whose requests carry nonzero ``arrival_time``s are served *open-loop*:
admission is gated on arrival, the clock jumps across idle gaps to the next
arrival, and the per-request timestamps (first output token, completion — both
stamped at the end of the epoch that produced them) feed the TTFT and
end-to-end latency distributions on :class:`RunResult`.  Batch traces (every
arrival at t=0) reduce to the original closed-loop behaviour bit for bit.

Epochs additionally *split at arrival boundaries*: when the next admission
candidate's arrival (the FCFS queue head's, or the earliest tenant head's
under the wfq / priority scheduling policies) would land inside the epoch
about to run, the per-sequence token budgets are truncated so the epoch closes
at (token granularity of) that arrival, and the untaken prefill/decode
remainder simply carries into the next epoch.  Without splitting, a request landing just after an epoch starts waits
up to a whole ``chunk_tokens`` epoch before admission — an unbounded TTFT
error at high offered load; with it the admission delay is bounded by one
token per active sequence.  The split decision (:meth:`_plan_epoch`) is shared
verbatim by the fast and scalar paths so the boundary can never diverge
between them, and a trace with every arrival at t=0 never splits, keeping the
closed-batch results bit-for-bit unchanged.

Latency accounting is tenant-aware: every request carries a ``tenant`` id and
:meth:`_finish` folds the per-request samples into per-tenant
:class:`TenantStats` (plus SLO goodput when the trace carries an
:class:`~repro.workload.requests.SLOTarget`).

Two implementations of the epoch loop exist, as two per-epoch *advance
strategies* driven by one shared loop (:meth:`PipelineEngine._drive`):

* :meth:`PipelineEngine.run` -- the fast path.  Every epoch it materialises
  the active sequences' integer state (remaining prefill/decode, positions,
  budgets) as flat numpy arrays, derives each sequence's prefill/decode takes
  with a handful of vectorised operations, and accumulates energy as
  per-quantized-context-bin token counts that are scaled by the memoized
  :class:`EnergyBreakdown` once per epoch.  No per-segment energy objects are
  allocated and the scheduler is queried through its O(1) membership set.
* :meth:`PipelineEngine.run_scalar` -- the retained scalar reference: the
  original one-sequence-at-a-time loop, kept for validation.  It shares the
  epoch loop and the epoch-closing arithmetic (duration, utilization,
  per-bin energy scaling) with the fast path, so the two produce
  bitwise-identical :class:`RunResult` fields; the equivalence suite asserts
  exactly that.

Both entry points accept an optional ``arrival_feed`` — the live-serving hook
used by ``repro serve --daemon`` (see :mod:`repro.serving`).  A feed delivers
requests *while the run executes* instead of up front, under a watermark
contract: the feed's watermark is a simulated-time bound below which no
further arrivals will ever be submitted.  The engine never plans an epoch,
jumps an idle gap, or fills the scheduler past the watermark; it blocks until
the watermark covers the step (or the feed is drained), ingests everything
the feed released, and re-plans.  Because batch planning only consults
arrivals strictly inside the step about to run, a request ingested before the
first fill that could admit it is indistinguishable from one submitted up
front — which is what makes the daemon replay bit-for-bit equal to
``run(trace)`` with the same requests.  With ``arrival_feed=None`` every hook
is skipped and the loop is the exact batch control flow.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..models.architectures import ModelArch
from ..models.pipeline_stages import pipeline_depth
from ..results import EnergyBreakdown, FaultStats, RunResult, ServeAccumulator
from ..workload.generator import Trace
from ..workload.policies import SchedulingPolicy, make_policy, validate_policy_name
from ..workload.requests import Sequence, SequencePhase
from ..workload.scheduler import InterSequenceScheduler, KVCapacityProvider
from .checkpoint import EngineCheckpoint
from .stages import TokenCostModel

#: epochs without forward progress tolerated before declaring a livelock
_MAX_STALLED_EPOCHS = 2000

#: most recent :class:`EpochRecord` entries retained for inspection.  The
#: epoch history is a ring so a million-request run does not accumulate one
#: record per epoch; every CI-sized run fits inside the ring, and the total
#: count always lives in ``engine.epoch_count`` / ``extra["epochs"]``.
_EPOCH_RING = 4096


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the epoch-based pipeline simulation."""

    #: tokens each active sequence may advance per epoch
    chunk_tokens: int = 128
    #: context-length quantisation for memoising per-token costs
    context_quantum: int = 256
    #: hard cap on epochs (guards against livelock in pathological configs)
    max_epochs: int = 2_000_000
    #: continuous-batching limit: cap on concurrently resident sequences
    #: (None = bounded only by KV capacity).  Real deployments cap the batch
    #: to bound per-request latency; the SLO-goodput experiment relies on it
    #: to make offered load saturate at a realistic operating point.
    max_active_sequences: int | None = None
    #: admission-order policy of the inter-sequence scheduler: ``fcfs`` (the
    #: paper's queue, bit-for-bit the historical behaviour), ``wfq``
    #: (weighted fair queueing over tenants) or ``priority`` (strict
    #: priority with starvation-free aging)
    scheduling_policy: str = "fcfs"
    #: priority units a waiting request gains per second (the ``priority``
    #: policy's starvation bound: a gap of d levels closes in d/rate seconds)
    priority_aging_rate: float = 1.0
    #: bounded admission queue: arrived waiting requests beyond this depth
    #: are shed (None = unbounded, overload shedding off — the historical
    #: behaviour, bit for bit)
    max_queue_depth: int | None = None
    #: drop waiting requests whose TTFT SLO is already unmeetable given how
    #: long they have queued (needs a trace with per-tenant or trace SLOs)
    shed_deadline: bool = False
    #: service-time slack reserved by deadline shedding: a request is dropped
    #: once its remaining TTFT budget falls below this headroom, i.e. it
    #: could no longer meet the deadline even if admitted immediately.  0.0
    #: sheds only requests already past the deadline.
    shed_headroom_s: float = 0.0
    #: times a depth-shed request retries with backoff before a permanent drop
    shed_retries: int = 0
    #: base retry backoff in seconds; doubles on every further shed
    shed_backoff_s: float = 0.0
    #: let the scheduling policy preempt (evict-and-requeue) an active
    #: lower-ranked sequence to admit a higher-ranked arrival once the batch
    #: cap or KV cache is full.  Preempted prefix KV is recomputed on
    #: re-admission (the recompute tax shows up in per-tenant stats).  Off =
    #: the historical run-to-completion behaviour, bit for bit.
    preemptive: bool = False

    def __post_init__(self) -> None:
        # Normalise as well as validate: "WFQ" and "wfq" must produce one
        # canonical spec dict (sweep-cache keys) and compare equal.
        object.__setattr__(
            self, "scheduling_policy", validate_policy_name(self.scheduling_policy)
        )

    def make_scheduling_policy(self) -> "SchedulingPolicy":
        """Instantiate the configured admission-order policy."""
        return make_policy(
            self.scheduling_policy, aging_rate=self.priority_aging_rate
        )


@dataclass
class EpochRecord:
    """Bookkeeping for one simulation epoch (exposed for tests/inspection)."""

    epoch: int
    tokens: int
    utilization: float
    duration_s: float
    active_sequences: int


@dataclass
class EpochPlan:
    """Per-sequence token takes for one epoch, shared by both engine paths.

    ``budgets[i]`` caps sequence *i*'s tokens this epoch; the prefill/decode
    split and average attended contexts are the vectorised derivation the fast
    path commits directly.  ``split`` marks plans whose budgets were truncated
    so the epoch closes at the next queue-head arrival instead of running a
    full chunk past it.
    """

    budgets: list[int]
    prefill_takes: list[int]
    decode_takes: list[int]
    prefill_avgs: list[float]
    decode_avgs: list[float]
    split: bool = False


@dataclass
class _EpochTally:
    """What one epoch's advance produced, handed to the shared epoch closer.

    Both advance strategies (vectorised and scalar) fill the same tally, so
    the loop around them — stall handling, epoch closing, timestamp stamping,
    accumulator updates — is written once in :meth:`PipelineEngine._drive`.
    """

    tokens: int = 0
    context_weighted: float = 0.0
    energy_bins: dict[int, int] = field(default_factory=dict)
    prefill_segments: list[tuple[Sequence, int]] = field(default_factory=list)
    decode_sequences: int = 0
    max_decode_chunk: int = 0
    first_decoders: list[Sequence] = field(default_factory=list)
    finished: list[Sequence] = field(default_factory=list)


class _LiveSuspend(Exception):
    """Control-flow signal: a live feed requested checkpoint-and-stop.

    Raised from deep inside the epoch loop (possibly while blocked waiting
    for arrivals) and caught by :meth:`PipelineEngine._drive`, which returns
    the captured :class:`EngineCheckpoint` exactly as ``suspend_at_epoch``
    would.
    """

    def __init__(self, checkpoint: EngineCheckpoint) -> None:
        super().__init__("live checkpoint-and-stop requested")
        self.checkpoint = checkpoint


class PipelineEngine:
    """Base class for the three pipeline strategies."""

    name = "base"

    def __init__(
        self,
        arch: ModelArch,
        cost_model: TokenCostModel,
        kv_manager: KVCapacityProvider,
        config: PipelineConfig | None = None,
        scheduler: InterSequenceScheduler | None = None,
    ) -> None:
        self.arch = arch
        self.cost_model = cost_model
        self.kv_manager = kv_manager
        self.config = config or PipelineConfig()
        # A caller-supplied scheduler owns its own admission cap and policy
        # (the system builder combines the config knobs with a KV-capacity
        # estimate); the default scheduler takes the config's
        # continuous-batching limit and scheduling policy directly so the
        # knobs are never silently ignored.
        self.scheduler = scheduler or InterSequenceScheduler(
            kv_manager,
            max_active_sequences=self.config.max_active_sequences,
            policy=self.config.make_scheduling_policy(),
            max_queue_depth=self.config.max_queue_depth,
            shed_deadline=self.config.shed_deadline,
            shed_headroom_s=self.config.shed_headroom_s,
            shed_retries=self.config.shed_retries,
            shed_backoff_s=self.config.shed_backoff_s,
            preemptive=self.config.preemptive,
        )
        #: optional weight-core recovery hook wired by the system builder:
        #: ``hook(target: int) -> RemappingResult | None``; consumed by the
        #: fault injector for ``weight_core`` events
        self.fault_recovery = None
        self.depth = pipeline_depth(arch)
        #: ring of the most recent epoch records (full count: ``epoch_count``)
        self.epochs: deque[EpochRecord] = deque(maxlen=_EPOCH_RING)
        #: total epochs closed over the run, including ones the ring dropped
        self.epoch_count = 0
        self._split_epochs = 0
        #: streaming per-request stats, folded as completion epochs close
        self._accumulator: ServeAccumulator | None = None
        self._interval_cache: dict[int, float] = {}
        self._energy_cache: dict[int, EnergyBreakdown] = {}

    # ------------------------------------------------------------ cached costs

    def _quantize(self, context: float) -> int:
        quantum = self.config.context_quantum
        return max(1, int(round(context / quantum)) * quantum)

    def stage_interval(self, context: float) -> float:
        key = self._quantize(context)
        if key not in self._interval_cache:
            self._interval_cache[key] = self.cost_model.stage_interval(key)
        return self._interval_cache[key]

    def token_energy(self, context: float) -> EnergyBreakdown:
        return self._energy_for_key(self._quantize(context))

    def _energy_for_key(self, key: int) -> EnergyBreakdown:
        cached = self._energy_cache.get(key)
        if cached is None:
            cached = self.cost_model.token_energy(key)
            self._energy_cache[key] = cached
        return cached

    # ----------------------------------------------------------- strategy hook

    def epoch_utilization(
        self,
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
    ) -> float:
        """Fraction of pipeline slots doing useful work this epoch."""
        raise NotImplementedError

    def planned_utilization(
        self,
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
    ) -> float:
        """Side-effect-free utilization estimate for sub-epoch planning.

        Defaults to :meth:`epoch_utilization`, which is pure for the token-
        and sequence-grained strategies; strategies that keep per-epoch state
        (blocked TGP's longest-sequence watermark) must override this with a
        non-committing variant, because the planner may evaluate an epoch that
        is then truncated and re-evaluated at close time.
        """
        return self.epoch_utilization(prefill_segments, decode_sequences)

    # ------------------------------------------------------------------ running

    def run(
        self,
        trace: Trace,
        workload_name: str | None = None,
        *,
        fault_plan=None,
        suspend_at_epoch: int | None = None,
        resume_from: EngineCheckpoint | None = None,
        arrival_feed=None,
    ) -> RunResult | EngineCheckpoint:
        """Serve ``trace`` to completion and return aggregate results.

        This is the array-based fast path; see the module docstring.  The
        retained reference implementation is :meth:`run_scalar`.

        ``fault_plan`` deterministically injects faults at epoch boundaries.
        ``suspend_at_epoch=N`` returns an :class:`EngineCheckpoint` instead of
        running epoch N (or a normal :class:`RunResult` when the trace drains
        first); ``resume_from`` restores such a checkpoint into this freshly
        built engine and continues — the combined run is bitwise identical to
        an uninterrupted one.  ``arrival_feed`` is the live-serving hook (see
        the module docstring); ``trace`` then starts empty and accumulates the
        ingested requests.
        """
        return self._drive(
            self._advance_epoch_fast, trace, workload_name,
            fault_plan=fault_plan, suspend_at_epoch=suspend_at_epoch,
            resume_from=resume_from, arrival_feed=arrival_feed,
        )

    def run_scalar(
        self,
        trace: Trace,
        workload_name: str | None = None,
        *,
        fault_plan=None,
        suspend_at_epoch: int | None = None,
        resume_from: EngineCheckpoint | None = None,
        arrival_feed=None,
    ) -> RunResult | EngineCheckpoint:
        """Retained scalar reference: advance one sequence at a time.

        Kept as the validation oracle for the array-based :meth:`run`; both
        paths share the epoch loop and the epoch-closing arithmetic, so their
        results must match bit for bit.  Prefer :meth:`run` everywhere else --
        this advance strategy is an order of magnitude slower on large traces.
        Fault injection, suspend/resume and live arrival feeds behave exactly
        as on :meth:`run`.
        """
        return self._drive(
            self._advance_epoch_scalar, trace, workload_name,
            fault_plan=fault_plan, suspend_at_epoch=suspend_at_epoch,
            resume_from=resume_from, arrival_feed=arrival_feed,
        )

    def _advance_epoch_fast(
        self, snapshot: list[Sequence], plan: EpochPlan, time_s: float
    ) -> _EpochTally:
        """Vectorised advance: commit the plan's takes directly.

        Flat integer state of every active sequence was derived by the plan
        in a few vectorised operations: every sequence takes min(chunk,
        remaining) tokens — truncated when the next arrival lands mid-epoch —
        split into a prefill take at its current position and a decode take
        right after it.
        """
        scheduler = self.scheduler
        tally = _EpochTally()
        budget_list = plan.budgets
        prefill_take_list = plan.prefill_takes
        decode_take_list = plan.decode_takes
        prefill_avg_list = plan.prefill_avgs
        decode_avg_list = plan.decode_avgs
        energy_bins = tally.energy_bins

        for i, sequence in enumerate(snapshot):
            if not scheduler.is_active(sequence):
                continue  # evicted by an earlier sequence's KV growth
            budget = budget_list[i]
            if budget <= 0:
                continue
            if not scheduler.grow_sequence(sequence, budget):
                continue
            prefill_take = prefill_take_list[i]
            decode_take = decode_take_list[i]
            if prefill_take > 0:
                avg_context = prefill_avg_list[i]
                tally.tokens += prefill_take
                tally.context_weighted += avg_context * prefill_take
                key = self._quantize(avg_context)
                energy_bins[key] = energy_bins.get(key, 0) + prefill_take
                tally.prefill_segments.append((sequence, prefill_take))
            if decode_take > 0:
                avg_context = decode_avg_list[i]
                tally.tokens += decode_take
                tally.context_weighted += avg_context * decode_take
                key = self._quantize(avg_context)
                energy_bins[key] = energy_bins.get(key, 0) + decode_take
                tally.decode_sequences += 1
                if decode_take > tally.max_decode_chunk:
                    tally.max_decode_chunk = decode_take
                if sequence.generated_tokens == 0:
                    tally.first_decoders.append(sequence)
            sequence.apply_advance(prefill_take, decode_take)
            if sequence.is_complete:
                # Scheduler bookkeeping (KV release, admission resume)
                # happens mid-epoch; the wall-clock stamp is corrected to
                # the epoch end by the driver, once the duration is known.
                scheduler.complete(sequence, time_s)
                tally.finished.append(sequence)
        return tally

    def _advance_epoch_scalar(
        self, snapshot: list[Sequence], plan: EpochPlan, time_s: float
    ) -> _EpochTally:
        """Scalar advance: one sequence at a time, the validation oracle.

        Keeps its one-sequence-at-a-time advancing and energy accounting, but
        takes the per-sequence token caps from the shared plan so the
        sub-epoch split boundary is decided by the exact same arithmetic as
        the fast path (the untruncated cap is min(chunk, remaining tokens of
        the current phase chain)).
        """
        scheduler = self.scheduler
        tally = _EpochTally()
        energy_bins = tally.energy_bins

        for index, sequence in enumerate(snapshot):  # `snapshot` is a copy
            if not scheduler.is_active(sequence):
                continue  # evicted by an earlier sequence's KV growth
            budget = plan.budgets[index]
            if budget <= 0:
                continue
            if not scheduler.grow_sequence(sequence, budget):
                continue
            had_output = sequence.generated_tokens > 0
            segments = sequence.advance_tokens(budget)
            for phase, count, start_position in segments:
                avg_context = start_position + (count - 1) / 2.0
                tally.tokens += count
                tally.context_weighted += avg_context * count
                key = self._quantize(avg_context)
                energy_bins[key] = energy_bins.get(key, 0) + count
                if phase is SequencePhase.PREFILL:
                    tally.prefill_segments.append((sequence, count))
                else:
                    tally.decode_sequences += 1
                    tally.max_decode_chunk = max(tally.max_decode_chunk, count)
            if not had_output and sequence.generated_tokens > 0:
                tally.first_decoders.append(sequence)
            if sequence.is_complete:
                # Scheduler bookkeeping (KV release, admission resume)
                # happens mid-epoch; the wall-clock stamp is corrected to
                # the epoch end by the driver, once the duration is known.
                scheduler.complete(sequence, time_s)
                tally.finished.append(sequence)
        return tally

    def _drive(
        self,
        advance,
        trace: Trace,
        workload_name: str | None,
        *,
        fault_plan,
        suspend_at_epoch: int | None,
        resume_from: EngineCheckpoint | None,
        arrival_feed,
    ) -> RunResult | EngineCheckpoint:
        """The shared epoch loop behind :meth:`run` and :meth:`run_scalar`.

        ``advance`` is the per-epoch strategy (vectorised or scalar).  With
        ``arrival_feed=None`` this is the exact batch control flow; a live
        feed adds the watermark gates described in the module docstring, and
        a feed-requested checkpoint-and-stop surfaces as :class:`_LiveSuspend`
        from the gates and returns the checkpoint like ``suspend_at_epoch``.
        """
        scheduler = self.scheduler
        injector, state = self._prepare_run(trace, fault_plan, resume_from)
        start_epoch, time_s, energy, processed_tokens, utilization_time, stalled_epochs = state

        def live_sync(horizon: float | None, *, wait: bool) -> None:
            """Service the live feed at an epoch boundary.

            Delivers pending checkpoint requests (raising :class:`_LiveSuspend`
            for a stop request), then ingests every released arrival.  With
            ``wait=True`` it first blocks until the feed covers ``horizon``
            (any new input when ``horizon`` is None) or is drained.
            """
            while True:
                request = arrival_feed.take_checkpoint_request()
                if request is not None:
                    snapshot = self._capture_checkpoint(
                        epoch_index, time_s, energy, processed_tokens,
                        utilization_time, stalled_epochs, injector,
                    )
                    arrival_feed.deliver_checkpoint(request, snapshot)
                    if request.stop:
                        raise _LiveSuspend(snapshot)
                    continue
                if not wait or arrival_feed.wait_ready(horizon):
                    break
            self._ingest_live(arrival_feed, trace)

        live_args = (arrival_feed, live_sync) if arrival_feed is not None else (None, None)

        epoch_index = start_epoch
        try:
            while True:
                if epoch_index >= self.config.max_epochs:
                    raise SimulationError(
                        "epoch limit reached before the trace completed"
                    )
                if suspend_at_epoch is not None and epoch_index >= suspend_at_epoch:
                    return self._capture_checkpoint(
                        epoch_index, time_s, energy, processed_tokens,
                        utilization_time, stalled_epochs, injector,
                    )
                if arrival_feed is not None:
                    live_sync(None, wait=False)
                    # Never fill at a clock the watermark has not covered: an
                    # epoch whose actual duration overshot its plan may have
                    # advanced past arrivals a client has yet to submit.
                    if (not arrival_feed.is_drained()
                            and arrival_feed.watermark() < time_s):
                        live_sync(time_s, wait=True)
                if scheduler.all_done:
                    if arrival_feed is None or arrival_feed.is_finished():
                        break
                    # Everything ingested so far is served; block for input.
                    live_sync(None, wait=True)
                    continue
                active, time_s = self._admit_or_skip_idle(time_s, *live_args)
                if injector is not None:
                    applied, delay = injector.poll(time_s)
                    if applied:
                        # Recovery consumed wall-clock, and the fault may have
                        # re-queued (even all of) the active set; re-admit so
                        # the epoch below runs against the post-fault state.
                        time_s += delay
                        if (arrival_feed is not None
                                and not arrival_feed.is_drained()
                                and arrival_feed.watermark() < time_s):
                            live_sync(time_s, wait=True)
                        active, time_s = self._admit_or_skip_idle(time_s, *live_args)
                if not active:
                    if arrival_feed is None or arrival_feed.is_finished():
                        break
                    live_sync(None, wait=True)
                    continue

                # `active` is already a defensive copy.
                plan = self._plan_epoch(active, time_s)
                if arrival_feed is not None and not arrival_feed.is_drained():
                    # The planner only saw ingested arrivals; make sure no
                    # future client submission could land inside this epoch
                    # (which would have split it), then re-plan with whatever
                    # the wait released.  No epoch index is consumed: batch
                    # never ran these aborted plans.
                    horizon = time_s + self._plan_horizon(active, plan)
                    if arrival_feed.watermark() < horizon:
                        live_sync(horizon, wait=True)
                        continue
                if plan.split:
                    self._split_epochs += 1

                tally = advance(active, plan, time_s)

                if tally.tokens == 0:
                    stalled_epochs = self._handle_stall(stalled_epochs)
                    epoch_index += 1
                    continue
                stalled_epochs = 0

                duration, utilization, epoch_energy = self._close_epoch(
                    tally.tokens,
                    tally.context_weighted,
                    tally.energy_bins,
                    tally.prefill_segments,
                    tally.decode_sequences,
                    tally.max_decode_chunk,
                )
                time_s += duration
                self._stamp_epoch_end(time_s, tally.first_decoders, tally.finished)
                # Fold finished sequences into the streaming stats now — the
                # epoch-end stamps above are their final timestamps, and in
                # streaming mode the scheduler retains no completed list to
                # fold from later.
                if self._accumulator is not None:
                    for sequence in tally.finished:
                        self._accumulator.note_completed(sequence)
                if arrival_feed is not None:
                    arrival_feed.notify_epoch(time_s, tally.finished, scheduler)
                energy = energy + epoch_energy
                processed_tokens += tally.tokens
                utilization_time += utilization * duration
                self.epochs.append(
                    EpochRecord(
                        epoch=epoch_index,
                        tokens=tally.tokens,
                        utilization=utilization,
                        duration_s=duration,
                        active_sequences=len(active),
                    )
                )
                self.epoch_count += 1
                epoch_index += 1
        except _LiveSuspend as suspend:
            return suspend.checkpoint

        return self._finish(
            trace, workload_name, time_s, energy, processed_tokens,
            utilization_time, injector.stats if injector is not None else None,
        )

    def _plan_horizon(self, snapshot: list[Sequence], plan: EpochPlan) -> float:
        """Planned duration of ``plan`` — the live feed's watermark gate.

        Rebuilds the planner's arrays from the committed plan (a split plan's
        takes already end at the in-queue arrival, so its horizon never
        reaches past the watermark that released that arrival).
        """
        positions = np.fromiter(
            (s.context_length for s in snapshot), dtype=np.int64,
            count=len(snapshot),
        )
        return self._planned_duration(
            snapshot,
            positions,
            np.asarray(plan.prefill_takes, dtype=np.int64),
            np.asarray(plan.decode_takes, dtype=np.int64),
        )

    def _ingest_live(self, arrival_feed, trace: Trace) -> None:
        """Move feed-released arrivals into the trace and the admission queue.

        Release order is (arrival_time, request_id) — the order a batch trace
        generator emits — so FCFS queue order matches the equivalent batch
        submission exactly.
        """
        released = arrival_feed.take_released()
        if released:
            trace.requests.extend(released)
            self.scheduler.ingest(released)

    # ----------------------------------------------------------- run lifecycle

    def _prepare_run(self, trace: Trace, fault_plan, resume_from):
        """Shared run prologue: submit or restore, build the fault injector.

        Returns ``(injector, (start_epoch, time_s, energy, processed_tokens,
        utilization_time, stalled_epochs))``.

        A trace carrying a lazy ``stream``
        (:class:`~repro.workload.streams.StreamingTrace`) is served in
        streaming mode: the scheduler pulls arrivals as simulated time
        advances and drops its completed/shed history lists (the accumulator
        below captures the stats instead), bounding resident memory by the
        active set rather than the trace length.
        """
        scheduler = self.scheduler
        # Deadline-aware shedding judges waiting requests against their
        # tenant's SLO; harmless otherwise (only consulted when enabled).
        scheduler.slo_lookup = trace.slo_for
        # Per-tenant KV quotas ride on the trace (duck-typed: streaming traces
        # carry them too).  An empty dict leaves the manager untouched, so
        # quota-free runs stay bitwise identical.
        quotas = getattr(trace, "tenant_quotas", None)
        if quotas:
            set_quotas = getattr(self.kv_manager, "set_tenant_quotas", None)
            if set_quotas is None:
                raise ConfigurationError(
                    "trace carries tenant KV quotas but the KV manager does "
                    "not support them"
                )
            set_quotas(quotas)
        # Per-request stats fold incrementally in *both* modes: the exact
        # small-N path is bitwise identical to the historical list-based
        # `_finish`, so streaming stays a pure execution knob.
        accumulator = ServeAccumulator(trace.slo_for)
        self._accumulator = accumulator
        scheduler.on_shed = accumulator.note_shed
        stream = getattr(trace, "stream", None)
        if stream is not None:
            scheduler.attach_stream(stream)
            scheduler.retain_history = False
        injector = None
        if fault_plan is not None and len(fault_plan):
            from ..sim.faults import FaultInjector  # runtime-only: no cycle

            injector = FaultInjector(plan=fault_plan, engine=self)
        if resume_from is not None:
            return injector, self._restore_checkpoint(trace, resume_from, injector)
        if stream is None:
            scheduler.submit_all(list(trace.requests))
        self.epochs = deque(maxlen=_EPOCH_RING)
        self.epoch_count = 0
        self._split_epochs = 0
        return injector, (0, 0.0, EnergyBreakdown(), 0, 0.0, 0)

    def _capture_checkpoint(
        self,
        next_epoch_index: int,
        time_s: float,
        energy: EnergyBreakdown,
        processed_tokens: int,
        utilization_time: float,
        stalled_epochs: int,
        injector,
    ) -> EngineCheckpoint:
        """Snapshot the complete engine state at an epoch boundary."""
        scheduler = self.scheduler
        sequences: dict[int, dict] = {}
        for sequence in (
            scheduler.waiting
            + scheduler.active
            + scheduler.completed
            + scheduler.shed
        ):
            sequences[sequence.sequence_id] = {
                "phase": sequence.phase.value,
                "prefill_progress": sequence.prefill_progress,
                "decode_progress": sequence.decode_progress,
                "eviction_count": sequence.eviction_count,
                "preemptions": sequence.preemptions,
                "recomputed_tokens": sequence.recomputed_tokens,
                "extra_prefill": sequence.extra_prefill,
                "decode_offset": sequence.decode_offset,
                "admission_time": sequence.admission_time,
                "first_token_time": sequence.first_token_time,
                "completion_time": sequence.completion_time,
                "retry_at": sequence.retry_at,
                "retries": sequence.retries,
                "metadata": dict(sequence.metadata),
            }
        return EngineCheckpoint(
            next_epoch_index=next_epoch_index,
            time_s=time_s,
            energy=asdict(energy),
            processed_tokens=processed_tokens,
            utilization_time=utilization_time,
            stalled_epochs=stalled_epochs,
            split_epochs=self._split_epochs,
            epochs=[asdict(record) for record in self.epochs],
            sequences=[[seq_id, sequences[seq_id]] for seq_id in sorted(sequences)],
            scheduler=scheduler.snapshot_state(),
            kv=self.kv_manager.snapshot_state(),
            faults=injector.snapshot_state() if injector is not None else None,
            epoch_count=self.epoch_count,
            stream_cursor=(
                scheduler.stream.emitted if scheduler.stream is not None else -1
            ),
            accumulator=(
                self._accumulator.state() if self._accumulator is not None else None
            ),
        )

    def _restore_checkpoint(self, trace: Trace, checkpoint: EngineCheckpoint, injector):
        """Load a checkpoint into this (freshly built) engine.

        Returns the epoch-loop state tuple ``_prepare_run`` hands back.
        """
        scheduler = self.scheduler
        if checkpoint.stream_cursor >= 0:
            # Streaming run: the arrival stream (attached by `_prepare_run`,
            # regenerated from the spec) replays deterministically, so rather
            # than persisting every emitted request the checkpoint stores the
            # emission cursor.  Fast-forward to it, keeping only the sequences
            # the checkpoint still tracks (waiting + active; completed and
            # shed history lives in the accumulator state).
            stream = scheduler.stream
            if stream is None:
                raise ConfigurationError(
                    "checkpoint was taken from a streaming run but the "
                    "resumed trace has no attached stream"
                )
            if stream.emitted:
                raise ConfigurationError(
                    "streaming resume requires a freshly regenerated stream"
                )
            needed = {seq_id for seq_id, _ in checkpoint.sequences}
            by_id = {}
            while stream.emitted < checkpoint.stream_cursor:
                request = stream.pop()
                if request.request_id in needed:
                    by_id[request.request_id] = Sequence(request=request)
        else:
            by_id = {
                request.request_id: Sequence(request=request)
                for request in trace.requests
            }
        for seq_id, data in checkpoint.sequences:
            sequence = by_id.get(seq_id)
            if sequence is None:
                raise ConfigurationError(
                    f"checkpoint does not match the trace: request {seq_id} "
                    "is not part of the regenerated trace"
                )
            sequence.phase = SequencePhase(data["phase"])
            sequence.prefill_progress = data["prefill_progress"]
            sequence.decode_progress = data["decode_progress"]
            sequence.eviction_count = data["eviction_count"]
            sequence.preemptions = data.get("preemptions", 0)
            sequence.recomputed_tokens = data["recomputed_tokens"]
            sequence.extra_prefill = data["extra_prefill"]
            sequence.decode_offset = data["decode_offset"]
            sequence.admission_time = data["admission_time"]
            sequence.first_token_time = data["first_token_time"]
            sequence.completion_time = data["completion_time"]
            sequence.retry_at = data["retry_at"]
            sequence.retries = data["retries"]
            sequence.metadata = dict(data["metadata"])
        scheduler.restore_state(checkpoint.scheduler, by_id)
        self.kv_manager.restore_state(checkpoint.kv)
        self.epochs = deque(
            (EpochRecord(**record) for record in checkpoint.epochs),
            maxlen=_EPOCH_RING,
        )
        self.epoch_count = (
            checkpoint.epoch_count
            if checkpoint.epoch_count >= 0
            else len(self.epochs)
        )
        self._split_epochs = checkpoint.split_epochs
        if self._accumulator is not None:
            if checkpoint.accumulator is not None:
                self._accumulator.restore_state(checkpoint.accumulator)
            else:
                # Pre-streaming checkpoint: the per-request history survived
                # in the scheduler's retained lists with final timestamps, so
                # replaying them in list order reproduces the fold exactly.
                for sequence in scheduler.completed:
                    self._accumulator.note_completed(sequence)
                for sequence in scheduler.shed:
                    self._accumulator.note_shed(sequence)
        if injector is not None and checkpoint.faults is not None:
            injector.restore_state(checkpoint.faults)
        return (
            checkpoint.next_epoch_index,
            checkpoint.time_s,
            EnergyBreakdown(**checkpoint.energy),
            checkpoint.processed_tokens,
            checkpoint.utilization_time,
            checkpoint.stalled_epochs,
        )

    # ------------------------------------------------------------ epoch pieces

    def _plan_epoch(self, snapshot: list[Sequence], time_s: float) -> EpochPlan:
        """Derive every active sequence's takes, splitting at the next arrival.

        The vectorised baseline take is ``min(chunk, remaining)`` per
        sequence, split into a prefill take at its current position and a
        decode take right after it.  When the next admission candidate's
        arrival (policy-defined, see :meth:`_gap_to_next_arrival`) lands
        strictly inside the epoch's planned duration, the budgets are scaled
        down proportionally (``floor``, but at least one token per advancing
        sequence so the epoch always makes progress) so the epoch closes at
        the arrival; the remainder of each chunk carries into the next epoch.
        Token granularity means the boundary can overshoot the arrival by at
        most one token per active sequence — the bounded admission error the
        split exists to provide.

        Both engine paths call this exact code, so the split decision — the
        only place planned (pre-KV-growth) floating-point arithmetic feeds
        back into the simulation — can never diverge between them.  A trace
        whose queue head has already arrived (closed batch, or a head blocked
        on capacity) never splits.
        """
        count = len(snapshot)
        chunk = self.config.chunk_tokens
        rem_prefill = np.fromiter(
            (s.remaining_prefill for s in snapshot), dtype=np.int64, count=count
        )
        rem_decode = np.fromiter(
            (s.remaining_decode for s in snapshot), dtype=np.int64, count=count
        )
        positions = np.fromiter(
            (s.context_length for s in snapshot), dtype=np.int64, count=count
        )
        budgets = np.minimum(chunk, rem_prefill + rem_decode)
        prefill_takes = np.minimum(budgets, rem_prefill)
        decode_takes = np.minimum(budgets - prefill_takes, rem_decode)
        split = False
        gap = self._gap_to_next_arrival(time_s)
        if gap is not None:
            planned = self._planned_duration(
                snapshot, positions, prefill_takes, decode_takes
            )
            if 0.0 < gap < planned:
                fraction = gap / planned
                budgets = np.where(
                    budgets > 0,
                    np.maximum(1, np.floor(fraction * budgets).astype(np.int64)),
                    budgets,
                )
                prefill_takes = np.minimum(budgets, rem_prefill)
                decode_takes = np.minimum(budgets - prefill_takes, rem_decode)
                split = True
        prefill_avgs = positions + (prefill_takes - 1) / 2.0
        decode_avgs = (positions + prefill_takes) + (decode_takes - 1) / 2.0
        return EpochPlan(
            budgets=budgets.tolist(),
            prefill_takes=prefill_takes.tolist(),
            decode_takes=decode_takes.tolist(),
            prefill_avgs=prefill_avgs.tolist(),
            decode_avgs=decode_avgs.tolist(),
            split=split,
        )

    def _gap_to_next_arrival(self, time_s: float) -> float | None:
        """Seconds until admission can next progress (None when it cannot gate).

        The instant comes from the scheduler's policy — the FCFS queue head's
        arrival (None once the head has arrived, even if blocked on
        capacity), or the earliest *future* tenant-head arrival under wfq /
        priority (an already-arrived capacity-blocked head does not hide a
        later head there, because the policy may admit the newcomer
        immediately) — so the split boundary respects the configured
        admission order.  Returns None when there is no future arrival to
        split at.
        """
        arrival = self.scheduler.next_future_arrival(time_s)
        if arrival is None:
            return None
        return arrival - time_s

    def _planned_duration(
        self,
        snapshot: list[Sequence],
        positions: np.ndarray,
        prefill_takes: np.ndarray,
        decode_takes: np.ndarray,
    ) -> float:
        """Estimated duration of an epoch advancing the planned takes.

        Mirrors :meth:`_close_epoch`'s duration arithmetic on the *planned*
        state: KV-growth failures and mid-epoch evictions can still shrink the
        epoch that actually runs, so this is a deterministic estimate for the
        split decision, not the closing value.  Uses the side-effect-free
        :meth:`planned_utilization` because a truncated plan is re-evaluated
        at close time.
        """
        epoch_tokens = int(prefill_takes.sum()) + int(decode_takes.sum())
        if epoch_tokens <= 0:
            return 0.0
        prefill_avgs = positions + (prefill_takes - 1) / 2.0
        decode_avgs = (positions + prefill_takes) + (decode_takes - 1) / 2.0
        context_weighted = float(
            np.sum(prefill_avgs * prefill_takes) + np.sum(decode_avgs * decode_takes)
        )
        interval = self.stage_interval(context_weighted / epoch_tokens)
        prefill_segments = [
            (snapshot[i], take)
            for i, take in enumerate(prefill_takes.tolist())
            if take > 0
        ]
        decode_count = int(np.count_nonzero(decode_takes))
        utilization = max(
            1e-6, min(1.0, self.planned_utilization(prefill_segments, decode_count))
        )
        duration = epoch_tokens * interval / utilization
        max_decode_chunk = int(decode_takes.max()) if len(decode_takes) else 0
        return max(duration, max_decode_chunk * self.depth * interval)

    def _admit_or_skip_idle(
        self, time_s: float, arrival_feed=None, live_sync=None
    ) -> tuple[list[Sequence], float]:
        """Fill at the current clock, jumping across idle gaps to the next arrival.

        Open-loop serving can leave the wafer idle: nothing active and every
        waiting request still in the future.  The simulation then advances the
        clock to the earliest arrival instead of stalling.  Returns the active
        snapshot and the (possibly advanced) clock; an empty snapshot means the
        trace is drained.  Raises only for a genuine capacity stall — a waiting
        sequence that *has* arrived but cannot be held even with the cache empty.

        With a live ``arrival_feed``, an idle jump past the feed's watermark
        first blocks (via ``live_sync``) until clients have promised the gap
        really is empty — a request they submit meanwhile may land earlier
        than the jump target.
        """
        scheduler = self.scheduler
        scheduler.fill(time_s)
        active = scheduler.active
        # The loop handles cascades the single jump cannot: a shed-with-backoff
        # queue where the jumped-to request is immediately deadline-shed on
        # arrival, leaving only later-eligible requests behind it.  Each pass
        # either admits something, drains the queue, or strictly advances the
        # clock, so it terminates.  `has_pending` also covers arrivals still
        # inside an attached stream (and is O(1), unlike `waiting`).
        while not active and scheduler.has_pending:
            arrived = scheduler.has_arrived_waiting(time_s)
            if arrived and time_s >= scheduler.admission_stall_until:
                raise SimulationError(
                    "KV cache cannot hold even a single waiting sequence; "
                    "reduce sequence lengths or enlarge the wafer"
                )
            target = time_s
            if not arrived:
                # Every waiting request is still in the future (an idle gap,
                # or every candidate backing off after an overload shed), not
                # a capacity stall.  Jump the clock to the earliest admission
                # instant.  The scheduler just reported waiting sequences, so
                # a missing arrival time is a malformed trace/scheduler —
                # raise a typed error instead of poisoning the clock with None.
                arrival = scheduler.next_arrival_time()
                if arrival is None:
                    raise SimulationError(
                        "scheduler reports waiting sequences but no next "
                        "arrival time; the trace or scheduler state is "
                        "malformed"
                    )
                target = max(target, arrival)
            # An injected admission stall freezes intake: with nothing active
            # the wafer simply waits the stall out (no other work to do).
            if scheduler.admission_stall_until > target:
                target = scheduler.admission_stall_until
            if (arrival_feed is not None and not arrival_feed.is_drained()
                    and target > arrival_feed.watermark()):
                live_sync(target, wait=True)
                scheduler.fill(time_s)
                active = scheduler.active
                continue
            if target <= time_s:
                raise SimulationError(
                    "admission cannot make progress: the scheduler reports a "
                    "future candidate that is not in the future; the trace "
                    "or scheduler state is malformed"
                )
            time_s = target
            scheduler.fill(time_s)
            active = scheduler.active
        return active, time_s

    @staticmethod
    def _stamp_epoch_end(
        time_s: float, first_decoders: list[Sequence], finished: list[Sequence]
    ) -> None:
        """Stamp per-request timestamps with the epoch-*end* wall clock.

        A token produced during an epoch leaves the pipeline when the epoch's
        duration has elapsed, so both the first-output-token time and the
        completion time are the post-duration clock (the in-loop
        ``scheduler.complete`` call stamped the epoch start; overwrite it).
        """
        for sequence in first_decoders:
            sequence.first_token_time = time_s
        for sequence in finished:
            sequence.completion_time = time_s

    def _handle_stall(self, stalled_epochs: int) -> int:
        """Nothing could make progress: force an eviction to break the tie."""
        stalled_epochs += 1
        if stalled_epochs > _MAX_STALLED_EPOCHS:
            raise SimulationError(
                f"pipeline made no progress for {_MAX_STALLED_EPOCHS} consecutive "
                "epochs; a sequence's context does not fit the configured KV cache"
            )
        victim = self.scheduler.evict_most_recent()
        if victim is None:
            # Nothing is left to evict: the epoch's only sequence was shed
            # mid-growth as quota-doomed.  The loop's all_done / admission
            # checks decide whether to refill or finish; with queued work the
            # stalled-epoch bound above still backstops a genuine livelock.
            return stalled_epochs
        return stalled_epochs

    def _close_epoch(
        self,
        epoch_tokens: int,
        context_weighted: float,
        energy_bins: dict[int, int],
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
        max_decode_chunk: int,
    ) -> tuple[float, float, EnergyBreakdown]:
        """Duration / utilization / energy of one epoch (shared by both paths)."""
        if epoch_tokens <= 0:
            # Both epoch loops skip empty epochs before closing them; getting
            # here means an engine-invariant violation, which should surface
            # as a typed error rather than a bare ZeroDivisionError.
            raise SimulationError(
                "internal error: _close_epoch called for an epoch that "
                "processed no tokens"
            )
        avg_context = context_weighted / epoch_tokens
        interval = self.stage_interval(avg_context)
        utilization = max(
            1e-6, min(1.0, self.epoch_utilization(prefill_segments, decode_sequences))
        )
        duration = epoch_tokens * interval / utilization
        # Autoregressive dependency bound: a decoding sequence produces at
        # most one token per full pipeline traversal, no matter how much
        # other work keeps the pipeline busy.
        dependency_bound = max_decode_chunk * self.depth * interval
        duration = max(duration, dependency_bound)
        utilization = (
            min(utilization, epoch_tokens * interval / duration)
            if duration > 0
            else utilization
        )
        # One memoized EnergyBreakdown lookup and scale per quantized context
        # bin -- not per segment -- in first-touch order.
        epoch_energy = EnergyBreakdown()
        for key, bin_tokens in energy_bins.items():
            epoch_energy = epoch_energy + self._energy_for_key(key).scaled(bin_tokens)
        return duration, utilization, epoch_energy

    def _finish(
        self,
        trace: Trace,
        workload_name: str | None,
        time_s: float,
        energy: EnergyBreakdown,
        processed_tokens: int,
        utilization_time: float,
        fault_stats: FaultStats | None = None,
    ) -> RunResult:
        # Pipeline fill/drain: one full traversal at the final context length.
        if processed_tokens > 0:
            time_s += self.cost_model.token_pipeline_latency(
                int(trace.mean_prefill_length) or 1
            )
        # Per-request latency metrics come from the streaming accumulator,
        # which folded every finished sequence as its completion epoch closed
        # (epoch-end timestamps) and every permanent shed as it happened.
        # TTFT excludes prefill-only requests (they never emit an output
        # token); neither metric includes the final pipeline fill/drain
        # correction, which is a trace-level constant.  At small N the
        # accumulator's exact mode reproduces the historical sample-list
        # arithmetic bit for bit.
        #
        # Per-tenant breakdown (single-tenant traces collapse to one entry)
        # plus SLO goodput.  Every tenant is judged by its own SLO when one is
        # set (interactive and batch tenants rarely share a deadline), falling
        # back to the trace-wide target; tenants with no applicable SLO carry
        # goodput None and stay out of the aggregate's denominator.  Shed
        # requests count against goodput (a dropped request never met its
        # SLO): shedding improves goodput only honestly, by freeing capacity
        # so the *surviving* requests meet their deadlines.
        accumulator = self._accumulator
        if accumulator is None:
            raise SimulationError(
                "internal error: _finish called before _prepare_run"
            )
        # Queue depth at capture time: always 0 for a drained batch run, but
        # the same field carries the live depth in the daemon's rolling
        # metrics, so batch results and live telemetry share one shape.
        queue_depths = self.scheduler.queue_depths()
        tenants, met_total, judged_total = accumulator.tenant_results(queue_depths)
        overall_goodput = None
        if trace.slo is not None or trace.tenant_slos:
            overall_goodput = (met_total / judged_total) if judged_total else 0.0

        return RunResult(
            system=self.name,
            model=self.arch.name,
            workload=workload_name or trace.spec.name,
            total_time_s=time_s,
            total_tokens=processed_tokens,
            output_tokens=accumulator.output_tokens,
            energy=energy,
            utilization=(utilization_time / time_s) if time_s > 0 else 0.0,
            recomputed_tokens=self.scheduler.stats.recomputed_tokens,
            evictions=self.scheduler.stats.evictions,
            ttft=accumulator.ttft.finalize(),
            latency=accumulator.latency.finalize(),
            goodput=overall_goodput,
            tenants=tenants,
            faults=fault_stats,
            shed_requests=accumulator.shed_total,
            extra={"epochs": self.epoch_count, "split_epochs": self._split_epochs},
        )

