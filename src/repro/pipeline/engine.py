"""Shared pipeline simulation engine.

The engine serves a request trace on the wafer by advancing the admitted
sequences in *epochs*: every epoch each active sequence processes up to
``chunk_tokens`` tokens (prefill tokens stream back-to-back; decode tokens are
one per pipeline traversal).  The wall-clock cost of an epoch is

    epoch_time = processed_tokens * stage_interval / utilization

where ``stage_interval`` is the slowest of the six stage latencies at the
epoch's average context length and ``utilization`` is supplied by the concrete
pipeline strategy (token-grained, sequence-grained or blocked).  Energy is
accumulated from the per-token cost model, and KV-cache growth / eviction is
driven through the inter-sequence scheduler so that thrashing shows up as
recomputed tokens and extra time.

Traces whose requests carry nonzero ``arrival_time``s are served *open-loop*:
admission is gated on arrival, the clock jumps across idle gaps to the next
arrival, and the per-request timestamps (first output token, completion — both
stamped at the end of the epoch that produced them) feed the TTFT and
end-to-end latency distributions on :class:`RunResult`.  Batch traces (every
arrival at t=0) reduce to the original closed-loop behaviour bit for bit.

Two implementations of the epoch loop exist:

* :meth:`PipelineEngine.run` -- the fast path.  Every epoch it materialises
  the active sequences' integer state (remaining prefill/decode, positions,
  budgets) as flat numpy arrays, derives each sequence's prefill/decode takes
  with a handful of vectorised operations, and accumulates energy as
  per-quantized-context-bin token counts that are scaled by the memoized
  :class:`EnergyBreakdown` once per epoch.  No per-segment energy objects are
  allocated and the scheduler is queried through its O(1) membership set.
* :meth:`PipelineEngine.run_scalar` -- the retained scalar reference: the
  original one-sequence-at-a-time loop, kept for validation.  It shares the
  epoch-closing arithmetic (duration, utilization, per-bin energy scaling)
  with the fast path, so the two produce bitwise-identical
  :class:`RunResult` fields; the equivalence suite asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..models.architectures import ModelArch
from ..models.pipeline_stages import pipeline_depth
from ..results import EnergyBreakdown, LatencyStats, RunResult
from ..workload.generator import Trace
from ..workload.requests import Sequence, SequencePhase
from ..workload.scheduler import InterSequenceScheduler, KVCapacityProvider
from .stages import TokenCostModel

#: epochs without forward progress tolerated before declaring a livelock
_MAX_STALLED_EPOCHS = 2000


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the epoch-based pipeline simulation."""

    #: tokens each active sequence may advance per epoch
    chunk_tokens: int = 128
    #: context-length quantisation for memoising per-token costs
    context_quantum: int = 256
    #: hard cap on epochs (guards against livelock in pathological configs)
    max_epochs: int = 2_000_000


@dataclass
class EpochRecord:
    """Bookkeeping for one simulation epoch (exposed for tests/inspection)."""

    epoch: int
    tokens: int
    utilization: float
    duration_s: float
    active_sequences: int


class PipelineEngine:
    """Base class for the three pipeline strategies."""

    name = "base"

    def __init__(
        self,
        arch: ModelArch,
        cost_model: TokenCostModel,
        kv_manager: KVCapacityProvider,
        config: PipelineConfig | None = None,
        scheduler: InterSequenceScheduler | None = None,
    ) -> None:
        self.arch = arch
        self.cost_model = cost_model
        self.kv_manager = kv_manager
        self.config = config or PipelineConfig()
        self.scheduler = scheduler or InterSequenceScheduler(kv_manager)
        self.depth = pipeline_depth(arch)
        self.epochs: list[EpochRecord] = []
        self._interval_cache: dict[int, float] = {}
        self._energy_cache: dict[int, EnergyBreakdown] = {}

    # ------------------------------------------------------------ cached costs

    def _quantize(self, context: float) -> int:
        quantum = self.config.context_quantum
        return max(1, int(round(context / quantum)) * quantum)

    def stage_interval(self, context: float) -> float:
        key = self._quantize(context)
        if key not in self._interval_cache:
            self._interval_cache[key] = self.cost_model.stage_interval(key)
        return self._interval_cache[key]

    def token_energy(self, context: float) -> EnergyBreakdown:
        return self._energy_for_key(self._quantize(context))

    def _energy_for_key(self, key: int) -> EnergyBreakdown:
        cached = self._energy_cache.get(key)
        if cached is None:
            cached = self.cost_model.token_energy(key)
            self._energy_cache[key] = cached
        return cached

    # ----------------------------------------------------------- strategy hook

    def epoch_utilization(
        self,
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
    ) -> float:
        """Fraction of pipeline slots doing useful work this epoch."""
        raise NotImplementedError

    # ------------------------------------------------------------------ running

    def run(self, trace: Trace, workload_name: str | None = None) -> RunResult:
        """Serve ``trace`` to completion and return aggregate results.

        This is the array-based fast path; see the module docstring.  The
        retained reference implementation is :meth:`run_scalar`.
        """
        scheduler = self.scheduler
        scheduler.submit_all(list(trace.requests))
        self.epochs = []
        time_s = 0.0
        energy = EnergyBreakdown()
        processed_tokens = 0
        utilization_time = 0.0
        stalled_epochs = 0
        chunk = self.config.chunk_tokens

        for epoch_index in range(self.config.max_epochs):
            if scheduler.all_done:
                break
            active, time_s = self._admit_or_skip_idle(time_s)
            if not active:
                break

            # Flat integer state of every active sequence, then the epoch's
            # advances in a few vectorised operations: every sequence takes
            # min(chunk, remaining) tokens, split into a prefill take at its
            # current position and a decode take right after it.
            snapshot = active  # `active` is already a defensive copy
            count = len(snapshot)
            rem_prefill = np.fromiter(
                (s.remaining_prefill for s in snapshot), dtype=np.int64, count=count
            )
            rem_decode = np.fromiter(
                (s.remaining_decode for s in snapshot), dtype=np.int64, count=count
            )
            positions = np.fromiter(
                (s.context_length for s in snapshot), dtype=np.int64, count=count
            )
            budgets = np.minimum(chunk, rem_prefill + rem_decode)
            prefill_takes = np.minimum(budgets, rem_prefill)
            decode_takes = np.minimum(budgets - prefill_takes, rem_decode)
            prefill_avgs = positions + (prefill_takes - 1) / 2.0
            decode_avgs = (positions + prefill_takes) + (decode_takes - 1) / 2.0

            budget_list = budgets.tolist()
            prefill_take_list = prefill_takes.tolist()
            decode_take_list = decode_takes.tolist()
            prefill_avg_list = prefill_avgs.tolist()
            decode_avg_list = decode_avgs.tolist()

            epoch_tokens = 0
            context_weighted = 0.0
            energy_bins: dict[int, int] = {}
            prefill_segments: list[tuple[Sequence, int]] = []
            decode_sequences = 0
            max_decode_chunk = 0
            first_decoders: list[Sequence] = []
            finished: list[Sequence] = []

            for i, sequence in enumerate(snapshot):
                if not scheduler.is_active(sequence):
                    continue  # evicted by an earlier sequence's KV growth
                budget = budget_list[i]
                if budget <= 0:
                    continue
                if not scheduler.grow_sequence(sequence, budget):
                    continue
                prefill_take = prefill_take_list[i]
                decode_take = decode_take_list[i]
                if prefill_take > 0:
                    avg_context = prefill_avg_list[i]
                    epoch_tokens += prefill_take
                    context_weighted += avg_context * prefill_take
                    key = self._quantize(avg_context)
                    energy_bins[key] = energy_bins.get(key, 0) + prefill_take
                    prefill_segments.append((sequence, prefill_take))
                if decode_take > 0:
                    avg_context = decode_avg_list[i]
                    epoch_tokens += decode_take
                    context_weighted += avg_context * decode_take
                    key = self._quantize(avg_context)
                    energy_bins[key] = energy_bins.get(key, 0) + decode_take
                    decode_sequences += 1
                    if decode_take > max_decode_chunk:
                        max_decode_chunk = decode_take
                    if sequence.generated_tokens == 0:
                        first_decoders.append(sequence)
                sequence.apply_advance(prefill_take, decode_take)
                if sequence.is_complete:
                    # Scheduler bookkeeping (KV release, admission resume)
                    # happens mid-epoch; the wall-clock stamp is corrected to
                    # the epoch end below, once the duration is known.
                    scheduler.complete(sequence, time_s)
                    finished.append(sequence)

            if epoch_tokens == 0:
                stalled_epochs = self._handle_stall(stalled_epochs)
                continue
            stalled_epochs = 0

            duration, utilization, epoch_energy = self._close_epoch(
                epoch_tokens,
                context_weighted,
                energy_bins,
                prefill_segments,
                decode_sequences,
                max_decode_chunk,
            )
            time_s += duration
            self._stamp_epoch_end(time_s, first_decoders, finished)
            energy = energy + epoch_energy
            processed_tokens += epoch_tokens
            utilization_time += utilization * duration
            self.epochs.append(
                EpochRecord(
                    epoch=epoch_index,
                    tokens=epoch_tokens,
                    utilization=utilization,
                    duration_s=duration,
                    active_sequences=count,
                )
            )
        else:
            raise SimulationError("epoch limit reached before the trace completed")

        return self._finish(trace, workload_name, time_s, energy, processed_tokens, utilization_time)

    def run_scalar(self, trace: Trace, workload_name: str | None = None) -> RunResult:
        """Retained scalar reference: advance one sequence at a time.

        Kept as the validation oracle for the array-based :meth:`run`; both
        paths share the epoch-closing arithmetic, so their results must match
        bit for bit.  Prefer :meth:`run` everywhere else -- this loop is an
        order of magnitude slower on large traces.
        """
        scheduler = self.scheduler
        scheduler.submit_all(list(trace.requests))
        self.epochs = []
        time_s = 0.0
        energy = EnergyBreakdown()
        processed_tokens = 0
        utilization_time = 0.0
        stalled_epochs = 0

        for epoch_index in range(self.config.max_epochs):
            if scheduler.all_done:
                break
            active, time_s = self._admit_or_skip_idle(time_s)
            if not active:
                break

            epoch_tokens = 0
            context_weighted = 0.0
            energy_bins: dict[int, int] = {}
            prefill_segments: list[tuple[Sequence, int]] = []
            decode_sequences = 0
            max_decode_chunk = 0
            first_decoders: list[Sequence] = []
            finished: list[Sequence] = []
            active_count = len(active)

            for sequence in active:  # `active` is already a defensive copy
                if not scheduler.is_active(sequence):
                    continue  # evicted by an earlier sequence's KV growth
                budget = self._sequence_budget(sequence)
                if budget <= 0:
                    continue
                if not scheduler.grow_sequence(sequence, budget):
                    continue
                had_output = sequence.generated_tokens > 0
                segments = sequence.advance_tokens(budget)
                for phase, count, start_position in segments:
                    avg_context = start_position + (count - 1) / 2.0
                    epoch_tokens += count
                    context_weighted += avg_context * count
                    key = self._quantize(avg_context)
                    energy_bins[key] = energy_bins.get(key, 0) + count
                    if phase is SequencePhase.PREFILL:
                        prefill_segments.append((sequence, count))
                    else:
                        decode_sequences += 1
                        max_decode_chunk = max(max_decode_chunk, count)
                if not had_output and sequence.generated_tokens > 0:
                    first_decoders.append(sequence)
                if sequence.is_complete:
                    # Scheduler bookkeeping (KV release, admission resume)
                    # happens mid-epoch; the wall-clock stamp is corrected to
                    # the epoch end below, once the duration is known.
                    scheduler.complete(sequence, time_s)
                    finished.append(sequence)

            if epoch_tokens == 0:
                stalled_epochs = self._handle_stall(stalled_epochs)
                continue
            stalled_epochs = 0

            duration, utilization, epoch_energy = self._close_epoch(
                epoch_tokens,
                context_weighted,
                energy_bins,
                prefill_segments,
                decode_sequences,
                max_decode_chunk,
            )
            time_s += duration
            self._stamp_epoch_end(time_s, first_decoders, finished)
            energy = energy + epoch_energy
            processed_tokens += epoch_tokens
            utilization_time += utilization * duration
            self.epochs.append(
                EpochRecord(
                    epoch=epoch_index,
                    tokens=epoch_tokens,
                    utilization=utilization,
                    duration_s=duration,
                    active_sequences=active_count,
                )
            )
        else:
            raise SimulationError("epoch limit reached before the trace completed")

        return self._finish(trace, workload_name, time_s, energy, processed_tokens, utilization_time)

    # ------------------------------------------------------------ epoch pieces

    def _admit_or_skip_idle(self, time_s: float) -> tuple[list[Sequence], float]:
        """Fill at the current clock, jumping across idle gaps to the next arrival.

        Open-loop serving can leave the wafer idle: nothing active and every
        waiting request still in the future.  The simulation then advances the
        clock to the earliest arrival instead of stalling.  Returns the active
        snapshot and the (possibly advanced) clock; an empty snapshot means the
        trace is drained.  Raises only for a genuine capacity stall — a waiting
        sequence that *has* arrived but cannot be held even with the cache empty.
        """
        scheduler = self.scheduler
        scheduler.fill(time_s)
        active = scheduler.active
        if active or not scheduler.waiting:
            return active, time_s
        if not scheduler.has_arrived_waiting(time_s):
            # Every waiting request is still in the future: idle gap, not a
            # capacity stall.  Jump the clock to the earliest arrival.
            time_s = scheduler.next_arrival_time()
            scheduler.fill(time_s)
            active = scheduler.active
        if not active:
            raise SimulationError(
                "KV cache cannot hold even a single waiting sequence; "
                "reduce sequence lengths or enlarge the wafer"
            )
        return active, time_s

    @staticmethod
    def _stamp_epoch_end(
        time_s: float, first_decoders: list[Sequence], finished: list[Sequence]
    ) -> None:
        """Stamp per-request timestamps with the epoch-*end* wall clock.

        A token produced during an epoch leaves the pipeline when the epoch's
        duration has elapsed, so both the first-output-token time and the
        completion time are the post-duration clock (the in-loop
        ``scheduler.complete`` call stamped the epoch start; overwrite it).
        """
        for sequence in first_decoders:
            sequence.first_token_time = time_s
        for sequence in finished:
            sequence.completion_time = time_s

    def _handle_stall(self, stalled_epochs: int) -> int:
        """Nothing could make progress: force an eviction to break the tie."""
        stalled_epochs += 1
        if stalled_epochs > _MAX_STALLED_EPOCHS:
            raise SimulationError(
                f"pipeline made no progress for {_MAX_STALLED_EPOCHS} consecutive "
                "epochs; a sequence's context does not fit the configured KV cache"
            )
        victim = self.scheduler.evict_most_recent()
        if victim is None:
            raise SimulationError("pipeline live-locked with no active work")
        return stalled_epochs

    def _close_epoch(
        self,
        epoch_tokens: int,
        context_weighted: float,
        energy_bins: dict[int, int],
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
        max_decode_chunk: int,
    ) -> tuple[float, float, EnergyBreakdown]:
        """Duration / utilization / energy of one epoch (shared by both paths)."""
        avg_context = context_weighted / epoch_tokens
        interval = self.stage_interval(avg_context)
        utilization = max(
            1e-6, min(1.0, self.epoch_utilization(prefill_segments, decode_sequences))
        )
        duration = epoch_tokens * interval / utilization
        # Autoregressive dependency bound: a decoding sequence produces at
        # most one token per full pipeline traversal, no matter how much
        # other work keeps the pipeline busy.
        dependency_bound = max_decode_chunk * self.depth * interval
        duration = max(duration, dependency_bound)
        utilization = (
            min(utilization, epoch_tokens * interval / duration)
            if duration > 0
            else utilization
        )
        # One memoized EnergyBreakdown lookup and scale per quantized context
        # bin -- not per segment -- in first-touch order.
        epoch_energy = EnergyBreakdown()
        for key, bin_tokens in energy_bins.items():
            epoch_energy = epoch_energy + self._energy_for_key(key).scaled(bin_tokens)
        return duration, utilization, epoch_energy

    def _finish(
        self,
        trace: Trace,
        workload_name: str | None,
        time_s: float,
        energy: EnergyBreakdown,
        processed_tokens: int,
        utilization_time: float,
    ) -> RunResult:
        # Pipeline fill/drain: one full traversal at the final context length.
        if processed_tokens > 0:
            time_s += self.cost_model.token_pipeline_latency(
                int(trace.mean_prefill_length) or 1
            )
        completed = self.scheduler.completed
        output_tokens = sum(
            sequence.request.decode_length for sequence in completed
        )
        # Per-request latency metrics from the epoch-end timestamps.  TTFT
        # excludes prefill-only requests (they never emit an output token);
        # neither metric includes the final pipeline fill/drain correction,
        # which is a trace-level constant.
        ttft_samples = [s.ttft_s for s in completed if s.ttft_s is not None]
        latency_samples = [s.latency_s for s in completed if s.latency_s is not None]
        return RunResult(
            system=self.name,
            model=self.arch.name,
            workload=workload_name or trace.spec.name,
            total_time_s=time_s,
            total_tokens=processed_tokens,
            output_tokens=output_tokens,
            energy=energy,
            utilization=(utilization_time / time_s) if time_s > 0 else 0.0,
            recomputed_tokens=self.scheduler.stats.recomputed_tokens,
            evictions=self.scheduler.stats.evictions,
            ttft=LatencyStats.from_samples(ttft_samples),
            latency=LatencyStats.from_samples(latency_samples),
            extra={"epochs": len(self.epochs)},
        )

    # ------------------------------------------------------------------ helpers

    def _sequence_budget(self, sequence: Sequence) -> int:
        if sequence.phase is SequencePhase.PREFILL:
            return min(self.config.chunk_tokens, sequence.remaining_tokens)
        if sequence.phase is SequencePhase.DECODE:
            return min(self.config.chunk_tokens, sequence.remaining_decode)
        return 0
