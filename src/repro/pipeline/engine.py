"""Shared pipeline simulation engine.

The engine serves a request trace on the wafer by advancing the admitted
sequences in *epochs*: every epoch each active sequence processes up to
``chunk_tokens`` tokens (prefill tokens stream back-to-back; decode tokens are
one per pipeline traversal).  The wall-clock cost of an epoch is

    epoch_time = processed_tokens * stage_interval / utilization

where ``stage_interval`` is the slowest of the six stage latencies at the
epoch's average context length and ``utilization`` is supplied by the concrete
pipeline strategy (token-grained, sequence-grained or blocked).  Energy is
accumulated from the per-token cost model, and KV-cache growth / eviction is
driven through the inter-sequence scheduler so that thrashing shows up as
recomputed tokens and extra time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..models.architectures import ModelArch
from ..models.pipeline_stages import pipeline_depth
from ..results import EnergyBreakdown, RunResult
from ..workload.generator import Trace
from ..workload.requests import Sequence, SequencePhase
from ..workload.scheduler import InterSequenceScheduler, KVCapacityProvider
from .stages import TokenCostModel


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the epoch-based pipeline simulation."""

    #: tokens each active sequence may advance per epoch
    chunk_tokens: int = 128
    #: context-length quantisation for memoising per-token costs
    context_quantum: int = 256
    #: hard cap on epochs (guards against livelock in pathological configs)
    max_epochs: int = 2_000_000


@dataclass
class EpochRecord:
    """Bookkeeping for one simulation epoch (exposed for tests/inspection)."""

    epoch: int
    tokens: int
    utilization: float
    duration_s: float
    active_sequences: int


class PipelineEngine:
    """Base class for the three pipeline strategies."""

    name = "base"

    def __init__(
        self,
        arch: ModelArch,
        cost_model: TokenCostModel,
        kv_manager: KVCapacityProvider,
        config: PipelineConfig | None = None,
        scheduler: InterSequenceScheduler | None = None,
    ) -> None:
        self.arch = arch
        self.cost_model = cost_model
        self.kv_manager = kv_manager
        self.config = config or PipelineConfig()
        self.scheduler = scheduler or InterSequenceScheduler(kv_manager)
        self.depth = pipeline_depth(arch)
        self.epochs: list[EpochRecord] = []
        self._interval_cache: dict[int, float] = {}
        self._energy_cache: dict[int, EnergyBreakdown] = {}

    # ------------------------------------------------------------ cached costs

    def _quantize(self, context: float) -> int:
        quantum = self.config.context_quantum
        return max(1, int(round(context / quantum)) * quantum)

    def stage_interval(self, context: float) -> float:
        key = self._quantize(context)
        if key not in self._interval_cache:
            self._interval_cache[key] = self.cost_model.stage_interval(key)
        return self._interval_cache[key]

    def token_energy(self, context: float) -> EnergyBreakdown:
        key = self._quantize(context)
        if key not in self._energy_cache:
            self._energy_cache[key] = self.cost_model.token_energy(key)
        return self._energy_cache[key]

    # ----------------------------------------------------------- strategy hook

    def epoch_utilization(
        self,
        prefill_segments: list[tuple[Sequence, int]],
        decode_sequences: int,
    ) -> float:
        """Fraction of pipeline slots doing useful work this epoch."""
        raise NotImplementedError

    # ------------------------------------------------------------------ running

    def run(self, trace: Trace, workload_name: str | None = None) -> RunResult:
        """Serve ``trace`` to completion and return aggregate results."""
        self.scheduler.submit_all(list(trace.requests))
        self.epochs = []
        time_s = 0.0
        energy = EnergyBreakdown()
        processed_tokens = 0
        utilization_time = 0.0
        stalled_epochs = 0

        for epoch_index in range(self.config.max_epochs):
            if self.scheduler.all_done:
                break
            self.scheduler.fill(time_s)
            active = self.scheduler.active
            if not active:
                if self.scheduler.waiting:
                    raise SimulationError(
                        "KV cache cannot hold even a single waiting sequence; "
                        "reduce sequence lengths or enlarge the wafer"
                    )
                break

            epoch_tokens = 0
            epoch_energy = EnergyBreakdown()
            prefill_segments: list[tuple[Sequence, int]] = []
            decode_sequences = 0
            context_weighted = 0.0
            max_decode_chunk = 0

            for sequence in list(active):
                if sequence not in self.scheduler.active:
                    continue  # evicted by an earlier sequence's KV growth
                budget = self._sequence_budget(sequence)
                if budget <= 0:
                    continue
                if not self.scheduler.grow_sequence(sequence, budget):
                    continue
                segments = sequence.advance_tokens(budget)
                for phase, count, start_position in segments:
                    avg_context = start_position + (count - 1) / 2.0
                    epoch_tokens += count
                    context_weighted += avg_context * count
                    epoch_energy = epoch_energy + self.token_energy(avg_context).scaled(count)
                    if phase is SequencePhase.PREFILL:
                        prefill_segments.append((sequence, count))
                    else:
                        decode_sequences += 1
                        max_decode_chunk = max(max_decode_chunk, count)
                if sequence.is_complete:
                    self.scheduler.complete(sequence, time_s)

            if epoch_tokens == 0:
                # Nothing could make progress: force an eviction to break the tie.
                stalled_epochs += 1
                if stalled_epochs > 2000:
                    raise SimulationError(
                        "pipeline made no progress for 2000 consecutive epochs; a "
                        "sequence's context does not fit the configured KV cache"
                    )
                victim = self.scheduler.evict_most_recent()
                if victim is None:
                    raise SimulationError("pipeline live-locked with no active work")
                continue
            stalled_epochs = 0

            avg_context = context_weighted / epoch_tokens
            interval = self.stage_interval(avg_context)
            utilization = max(1e-6, min(1.0, self.epoch_utilization(prefill_segments, decode_sequences)))
            duration = epoch_tokens * interval / utilization
            # Autoregressive dependency bound: a decoding sequence produces at
            # most one token per full pipeline traversal, no matter how much
            # other work keeps the pipeline busy.
            dependency_bound = max_decode_chunk * self.depth * interval
            duration = max(duration, dependency_bound)
            utilization = min(utilization, epoch_tokens * interval / duration) if duration > 0 else utilization
            time_s += duration
            energy = energy + epoch_energy
            processed_tokens += epoch_tokens
            utilization_time += utilization * duration
            self.epochs.append(
                EpochRecord(
                    epoch=epoch_index,
                    tokens=epoch_tokens,
                    utilization=utilization,
                    duration_s=duration,
                    active_sequences=len(active),
                )
            )
        else:
            raise SimulationError("epoch limit reached before the trace completed")

        # Pipeline fill/drain: one full traversal at the final context length.
        if processed_tokens > 0:
            time_s += self.cost_model.token_pipeline_latency(int(trace.mean_prefill_length) or 1)

        output_tokens = sum(
            sequence.request.decode_length for sequence in self.scheduler.completed
        )
        recomputed = self.scheduler.stats.recomputed_tokens
        return RunResult(
            system=self.name,
            model=self.arch.name,
            workload=workload_name or trace.spec.name,
            total_time_s=time_s,
            total_tokens=processed_tokens,
            output_tokens=output_tokens,
            energy=energy,
            utilization=(utilization_time / time_s) if time_s > 0 else 0.0,
            recomputed_tokens=recomputed,
            evictions=self.scheduler.stats.evictions,
            extra={"epochs": len(self.epochs)},
        )

    # ------------------------------------------------------------------ helpers

    def _sequence_budget(self, sequence: Sequence) -> int:
        if sequence.phase is SequencePhase.PREFILL:
            return min(self.config.chunk_tokens, sequence.remaining_tokens)
        if sequence.phase is SequencePhase.DECODE:
            return min(self.config.chunk_tokens, sequence.remaining_decode)
        return 0
