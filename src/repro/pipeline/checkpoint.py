"""Versioned engine checkpoints: suspend a serving run, resume it bit for bit.

A checkpoint captures the *complete* mutable state of a pipeline engine at an
epoch boundary: the epoch clock and accumulators, every sequence's progress
and timestamps, the scheduler (active/completed order, policy queues including
WFQ virtual time, shed/stall bookkeeping) and the KV-cache occupancy (free
blocks, allocations, ring pointers, page tables).  Restoring it into a freshly
built engine and finishing the run produces a :class:`~repro.results.RunResult`
bitwise-identical to the uninterrupted run — the equivalence suite asserts
exactly that across every engine path, KV policy and scheduling policy.

Nothing derived is stored: cost-model memo caches are pure functions of the
configuration, and the trace is regenerated from its spec (trace generation
consumes its RNG entirely before the run starts, so there is no live RNG
state to capture).  The snapshot is plain JSON; floats survive the round trip
exactly because ``json`` serialises them via ``repr``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError

#: bump when the snapshot layout changes incompatibly
CHECKPOINT_VERSION = 1


@dataclass
class EngineCheckpoint:
    """Full engine state at the boundary of ``next_epoch_index``.

    Produced by ``PipelineEngine.run(..., suspend_at_epoch=N)`` and consumed
    by ``run(..., resume_from=checkpoint)``; ``save``/``load`` move it through
    a JSON file for the CLI's suspend/resume round trip.
    """

    #: epoch index the resumed run executes first
    next_epoch_index: int
    time_s: float
    #: the four EnergyBreakdown component fields (no derived total)
    energy: dict[str, float]
    processed_tokens: int
    utilization_time: float
    stalled_epochs: int
    split_epochs: int
    #: closed EpochRecord rows (dicts of the dataclass fields)
    epochs: list[dict[str, Any]]
    #: ``[request_id, {mutable sequence fields}]`` pairs, sorted by id
    sequences: list[list[Any]]
    #: scheduler snapshot incl. policy queues / virtual time / shed state
    scheduler: dict[str, Any]
    #: KV-cache manager occupancy snapshot
    kv: dict[str, Any]
    #: fault-injector cursor + counters (None = run has no fault plan)
    faults: dict[str, Any] | None = None
    #: total epochs closed (the ``epochs`` list is a bounded ring of the most
    #: recent ones; -1 = pre-streaming checkpoint, fall back to ``len(epochs)``)
    epoch_count: int = -1
    #: requests emitted by the lazy arrival stream so far — the stream
    #: regenerates deterministically from the spec, so the cursor alone
    #: restores it (-1 = the run was not streaming)
    stream_cursor: int = -1
    #: streaming stats accumulator state (None = pre-streaming checkpoint;
    #: the retained scheduler history lists are replayed instead)
    accumulator: dict[str, Any] | None = None
    version: int = CHECKPOINT_VERSION

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EngineCheckpoint":
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise ConfigurationError(
                f"checkpoint version {version!r} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return cls(**data)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.as_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "EngineCheckpoint":
        return cls.from_dict(json.loads(Path(path).read_text()))
