"""Exception hierarchy for the Ouroboros reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A hardware or model configuration is internally inconsistent."""


class CapacityError(ReproError):
    """A resource (SRAM, KV blocks, cores) does not fit the requested load."""


class MappingError(ReproError):
    """A mapping request cannot be satisfied (e.g. not enough healthy cores)."""


class KVCacheError(ReproError):
    """An invalid KV-cache operation was requested."""


class SchedulingError(ReproError):
    """The inter-sequence scheduler was driven into an invalid state."""


class SimulationError(ReproError):
    """The end-to-end simulator reached an inconsistent state."""


class ProtocolError(ReproError):
    """A live-serving daemon message or reply violated the wire protocol."""
