"""Public facade of the Ouroboros reproduction.

:class:`OuroborosSystem` is the entry point a downstream user interacts with::

    from repro import OuroborosSystem, get_model, generate_trace

    system = OuroborosSystem(get_model("llama-13b"))
    trace = generate_trace("wikitext2", num_requests=200)
    result = system.serve(trace)
    print(result.throughput_tokens_per_s, result.energy_per_output_token_j)

The facade wraps the builder in :mod:`repro.sim.engine`: it samples wafer
defects, runs the inter-core mapping, sets up the distributed KV-cache manager
and exposes serving, fault-injection and introspection APIs.
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import ConfigurationError
from ..mapping.fault_tolerance import FaultToleranceManager, RemappingResult
from ..models.architectures import ModelArch, get_model
from ..results import RunResult
from ..sim.engine import (
    BuiltOuroboros,
    KVPolicy,
    MappingStrategy,
    OuroborosSystemConfig,
    PipelineMode,
    _build_system,
    default_system_config,
    required_wafers,
)
from ..workload.generator import Trace, generate_trace
from ..workload.streams import StreamingTrace


class OuroborosSystem:
    """A wafer-scale SRAM CIM deployment serving one model."""

    def __init__(
        self,
        model: ModelArch | str,
        config: OuroborosSystemConfig | None = None,
        auto_scale_wafers: bool = True,
    ) -> None:
        self.arch = get_model(model) if isinstance(model, str) else model
        config = config if config is not None else default_system_config()
        if auto_scale_wafers:
            needed = required_wafers(self.arch, config)
            if needed > config.num_wafers:
                config = replace(config, num_wafers=needed)
        self.config = config
        self._built: BuiltOuroboros | None = None

    # ------------------------------------------------------------------ build

    @property
    def name(self) -> str:
        """Display name (the ``ServingSystem`` protocol)."""
        return "Ouroboros"

    @property
    def built(self) -> BuiltOuroboros:
        """The underlying built system (constructed lazily on first use)."""
        if self._built is None:
            self._built = _build_system(self.arch, self.config)
        return self._built

    def rebuild(self) -> BuiltOuroboros:
        """Force a rebuild (e.g. after changing defect seeds)."""
        self._built = _build_system(self.arch, self.config)
        return self._built

    # ---------------------------------------------------------------- serving

    def serve(
        self,
        trace: Trace | StreamingTrace,
        workload_name: str | None = None,
        *,
        fault_plan=None,
        suspend_at_epoch: int | None = None,
        resume_from=None,
    ) -> RunResult:
        """Serve a request trace and return throughput / energy results.

        ``fault_plan`` injects runtime faults; ``suspend_at_epoch`` /
        ``resume_from`` checkpoint and resume the run (see
        :meth:`repro.sim.engine.BuiltOuroboros.serve`).
        """
        return self.built.serve(
            trace,
            workload_name,
            fault_plan=fault_plan,
            suspend_at_epoch=suspend_at_epoch,
            resume_from=resume_from,
        )

    def serve_live(
        self,
        trace: Trace | StreamingTrace,
        workload_name: str | None = None,
        *,
        arrival_feed,
        fault_plan=None,
        resume_from=None,
        scalar: bool = False,
    ) -> RunResult:
        """Serve with live ingestion through an arrival feed (the daemon path).

        ``trace`` starts empty and accumulates requests as the feed releases
        them; see :meth:`repro.sim.engine.BuiltOuroboros.serve_live`.
        """
        return self.built.serve_live(
            trace,
            workload_name,
            arrival_feed=arrival_feed,
            fault_plan=fault_plan,
            resume_from=resume_from,
            scalar=scalar,
        )

    def serve_workload(
        self, workload: str, num_requests: int = 1000, seed: int = 0
    ) -> RunResult:
        """Generate one of the paper's workloads by name and serve it."""
        trace = generate_trace(workload, num_requests=num_requests, seed=seed)
        return self.serve(trace, workload_name=workload)

    # ------------------------------------------------------------ introspection

    def summary(self) -> dict[str, float]:
        """Key facts about the built deployment (core counts, KV capacity...)."""
        return self.built.summary()

    @property
    def num_wafers(self) -> int:
        return self.config.num_wafers

    @property
    def pipeline_depth(self) -> int:
        return 6 * self.arch.num_blocks

    def fits_single_wafer(self) -> bool:
        return required_wafers(self.arch, self.config) == 1

    # ------------------------------------------------------------ fault injection

    def fault_tolerance_manager(self) -> FaultToleranceManager:
        """Build a fault-tolerance manager bound to wafer 0's mapping."""
        built = self.built
        if not built.mappings:
            raise ConfigurationError("system has no mapping to protect")
        from ..kvcache.manager import DistributedKVCacheManager

        kv_manager = built.kv_manager
        if not isinstance(kv_manager, DistributedKVCacheManager):
            kv_manager = None
        return FaultToleranceManager(
            built.wafers[0], built.mappings[0], kv_manager=kv_manager
        )

    def inject_core_failure(self, core_id: int) -> RemappingResult:
        """Fail one core of wafer 0 and return the recovery action taken."""
        return self.fault_tolerance_manager().fail_core(core_id)


__all__ = [
    "OuroborosSystem",
    "OuroborosSystemConfig",
    "PipelineMode",
    "KVPolicy",
    "MappingStrategy",
]
