"""The paper's primary contribution: the Ouroboros system facade."""

from .system import OuroborosSystem

__all__ = ["OuroborosSystem"]
