"""Per-block layer decomposition used by the inter-core mapping.

The inter-core mapper (Section 4.3.1) places *weighted* layers of a single
transformer block onto CIM cores and then repeats that placement for every
block.  For each layer the MIQP objective needs:

* ``output(l)``    -- output-activation volume handed to the next layer,
* ``reduction(l)`` -- partial-sum volume reduced across input-channel splits,
* ``gather(l)``    -- gathered volume when output-channel splits are concatenated,
* ``I(l), O(l)``   -- number of splits along the input / output channels,
* ``num_cores(l)`` -- cores required to hold the layer's weights.

Attention score / context GEMVs have no static weights; they run on the KV
cores and are handled by the KV mapping (Section 4.4.3), not here.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .architectures import ModelArch

PARTIAL_SUM_BYTES = 4  # 32-bit partial sums


class LayerKind(enum.Enum):
    """Weighted layers inside one transformer block."""

    QKV_PROJECTION = "qkv_projection"
    OUTPUT_PROJECTION = "output_projection"
    FFN_UP = "ffn_up"
    FFN_DOWN = "ffn_down"


@dataclass(frozen=True)
class BlockLayer:
    """One weighted layer of a transformer block, as seen by the mapper."""

    index: int
    kind: LayerKind
    input_dim: int
    output_dim: int
    weight_bytes: int
    activation_bytes: int = 1

    def __post_init__(self) -> None:
        if self.input_dim <= 0 or self.output_dim <= 0:
            raise ConfigurationError("layer dimensions must be positive")
        if self.weight_bytes <= 0:
            raise ConfigurationError("layer weight bytes must be positive")

    # -- MIQP constants --------------------------------------------------------

    def num_cores(self, core_weight_capacity_bytes: int) -> int:
        """#Core(l): cores needed to hold this layer's weights."""
        return max(1, math.ceil(self.weight_bytes / core_weight_capacity_bytes))

    def output_splits(self, core_weight_capacity_bytes: int) -> int:
        """O(l): splits along the output-channel dimension (prioritised)."""
        cores = self.num_cores(core_weight_capacity_bytes)
        return min(cores, self.output_dim)

    def input_splits(self, core_weight_capacity_bytes: int) -> int:
        """I(l): splits along the input-channel dimension."""
        cores = self.num_cores(core_weight_capacity_bytes)
        return max(1, math.ceil(cores / self.output_splits(core_weight_capacity_bytes)))

    def output_volume_bytes(self) -> int:
        """output(l): bytes of output activation produced per token."""
        return self.output_dim * self.activation_bytes

    def reduction_volume_bytes(self, core_weight_capacity_bytes: int) -> int:
        """reduction(l): bytes of 32-bit partial sums reduced per token."""
        if self.input_splits(core_weight_capacity_bytes) <= 1:
            return 0
        return self.output_dim * PARTIAL_SUM_BYTES

    def gather_volume_bytes(self, core_weight_capacity_bytes: int) -> int:
        """gather(l): bytes gathered when concatenating output-channel splits."""
        if self.output_splits(core_weight_capacity_bytes) <= 1:
            return 0
        return self.output_dim * self.activation_bytes

    def macs_per_token(self) -> int:
        """8-bit multiply-accumulates for one token through this layer."""
        return self.input_dim * self.output_dim


def build_block_layers(arch: ModelArch) -> list[BlockLayer]:
    """Weighted layers of one transformer block, in dataflow order."""
    act = arch.activation_bytes
    wb = arch.weight_bytes_per_param
    hidden = arch.hidden_size
    qkv_out = arch.q_dim + 2 * arch.kv_dim
    layers = [
        BlockLayer(
            index=0,
            kind=LayerKind.QKV_PROJECTION,
            input_dim=hidden,
            output_dim=qkv_out,
            weight_bytes=hidden * qkv_out * wb,
            activation_bytes=act,
        ),
        BlockLayer(
            index=1,
            kind=LayerKind.OUTPUT_PROJECTION,
            input_dim=arch.q_dim,
            output_dim=hidden,
            weight_bytes=arch.q_dim * hidden * wb,
            activation_bytes=act,
        ),
        BlockLayer(
            index=2,
            kind=LayerKind.FFN_UP,
            input_dim=hidden,
            output_dim=arch.ffn_hidden_size,
            weight_bytes=(arch.ffn_matrices - 1) * hidden * arch.ffn_hidden_size * wb,
            activation_bytes=act,
        ),
        BlockLayer(
            index=3,
            kind=LayerKind.FFN_DOWN,
            input_dim=arch.ffn_hidden_size,
            output_dim=hidden,
            weight_bytes=arch.ffn_hidden_size * hidden * wb,
            activation_bytes=act,
        ),
    ]
    return layers


def block_weight_bytes(arch: ModelArch) -> int:
    """Total weight bytes of one block, as seen by the mapper."""
    return sum(layer.weight_bytes for layer in build_block_layers(arch))


def cores_per_block(arch: ModelArch, core_weight_capacity_bytes: int) -> int:
    """Total CIM cores needed to hold one block's weights."""
    return sum(
        layer.num_cores(core_weight_capacity_bytes)
        for layer in build_block_layers(arch)
    )
