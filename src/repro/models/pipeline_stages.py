"""The six-stage pipeline decomposition of a transformer block (Fig. 4).

Each transformer block is split into six pipeline stages:

1. LayerNorm + QKV generation          (weighted GEMV on weight cores)
2. Score  S = Q K^T                     (GEMV against the KV cache cores)
3. Softmax                              (SFU)
4. Context  softmax(S) V                (GEMV against the KV cache cores)
5. Output projection (+ residual)       (weighted GEMV on weight cores)
6. LayerNorm + FFN1 + FFN2 (+ residual) (weighted GEMVs on weight cores)

A model with N blocks therefore forms a unified 6N-stage pipeline.  The stage
specs below give, for a single token at a given context position, the
multiply-accumulate count, the SFU element count, the static weight bytes the
stage needs resident, and the activation bytes it hands to the next stage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .architectures import ModelArch

STAGES_PER_BLOCK = 6


class StageKind(enum.Enum):
    """The six pipeline stages of a transformer block."""

    QKV_GENERATION = "qkv_generation"
    SCORE = "score"
    SOFTMAX = "softmax"
    CONTEXT = "context"
    PROJECTION = "projection"
    FFN = "ffn"


#: stages whose GEMV runs against the dynamically managed KV cache
KV_STAGES = frozenset({StageKind.SCORE, StageKind.CONTEXT})


@dataclass(frozen=True)
class StageSpec:
    """Static description of one pipeline stage of one block."""

    kind: StageKind
    arch: ModelArch

    # ------------------------------------------------------------------ compute

    def macs_per_token(self, context_length: int) -> float:
        """Multiply-accumulates for one token with ``context_length`` cached tokens."""
        arch = self.arch
        h = arch.hidden_size
        ctx = max(1, context_length)
        if self.kind is StageKind.QKV_GENERATION:
            return float(h * (arch.q_dim + 2 * arch.kv_dim))
        if self.kind is StageKind.SCORE:
            return float(arch.num_heads * arch.head_dim * ctx)
        if self.kind is StageKind.SOFTMAX:
            return 0.0
        if self.kind is StageKind.CONTEXT:
            return float(arch.num_heads * arch.head_dim * ctx)
        if self.kind is StageKind.PROJECTION:
            return float(arch.q_dim * h)
        if self.kind is StageKind.FFN:
            return float(arch.ffn_matrices * h * arch.ffn_hidden_size)
        raise AssertionError(f"unhandled stage kind {self.kind}")

    def sfu_elements_per_token(self, context_length: int) -> int:
        """Elements processed by the SFU (softmax, layernorm, residual adds)."""
        arch = self.arch
        ctx = max(1, context_length)
        if self.kind is StageKind.QKV_GENERATION:
            return arch.hidden_size  # leading LayerNorm
        if self.kind is StageKind.SOFTMAX:
            return arch.num_heads * ctx
        if self.kind is StageKind.PROJECTION:
            return arch.hidden_size  # residual add
        if self.kind is StageKind.FFN:
            # LayerNorm + activation function + residual add
            return 2 * arch.hidden_size + arch.ffn_hidden_size
        return 0

    # ------------------------------------------------------------------ storage

    @property
    def weight_bytes(self) -> int:
        """Static weights that must reside on the stage's cores."""
        arch = self.arch
        h = arch.hidden_size
        wb = arch.weight_bytes_per_param
        if self.kind is StageKind.QKV_GENERATION:
            return h * (arch.q_dim + 2 * arch.kv_dim) * wb
        if self.kind is StageKind.PROJECTION:
            return arch.q_dim * h * wb
        if self.kind is StageKind.FFN:
            return arch.ffn_matrices * h * arch.ffn_hidden_size * wb
        return 0

    @property
    def uses_kv_cache(self) -> bool:
        return self.kind in KV_STAGES

    @property
    def is_weighted(self) -> bool:
        return self.weight_bytes > 0

    # ------------------------------------------------------------------ dataflow

    def output_bytes_per_token(self, context_length: int) -> int:
        """Activation bytes handed to the next stage for one token."""
        arch = self.arch
        ctx = max(1, context_length)
        if self.kind is StageKind.QKV_GENERATION:
            return (arch.q_dim + 2 * arch.kv_dim) * arch.activation_bytes
        if self.kind is StageKind.SCORE:
            return arch.num_heads * ctx * arch.activation_bytes
        if self.kind is StageKind.SOFTMAX:
            return arch.num_heads * ctx * arch.activation_bytes
        if self.kind is StageKind.CONTEXT:
            return arch.q_dim * arch.activation_bytes
        if self.kind is StageKind.PROJECTION:
            return arch.hidden_size * arch.activation_bytes
        if self.kind is StageKind.FFN:
            return arch.hidden_size * arch.activation_bytes
        raise AssertionError(f"unhandled stage kind {self.kind}")

    def kv_write_bytes_per_token(self) -> int:
        """KV-cache bytes appended per token processed by this stage."""
        if self.kind is StageKind.QKV_GENERATION:
            return self.arch.kv_bytes_per_token_per_block
        return 0


def build_stage_specs(arch: ModelArch) -> list[StageSpec]:
    """The six stage specs of one block of ``arch``, in pipeline order."""
    return [StageSpec(kind=kind, arch=arch) for kind in StageKind]


def pipeline_depth(arch: ModelArch) -> int:
    """Total number of stages in the unified pipeline (6N)."""
    return STAGES_PER_BLOCK * arch.num_blocks


def block_macs_per_token(arch: ModelArch, context_length: int) -> float:
    """MACs for one token through one whole block."""
    return sum(
        spec.macs_per_token(context_length) for spec in build_stage_specs(arch)
    )
