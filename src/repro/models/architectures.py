"""Transformer architecture descriptions used by the evaluation.

The paper evaluates decoder-only models (LLaMA-13B/32B/65B, Baichuan-13B,
Qwen-32B) and encoder-containing models (BERT-large, T5-11B).  For simulation
purposes a model is fully described by its block geometry (hidden size, head
counts, FFN width, number of blocks) plus its attention masking mode, which
determines whether plain token-grained pipelining applies (causal mask) or the
blocked variant is needed (bidirectional / prefix masks, Section 4.2.2).

Weights and activations are 8-bit, matching the paper's digital CIM datapath.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import GB


class AttentionMask(enum.Enum):
    """Masking mode of the attention mechanism (Fig. 6)."""

    CAUSAL = "causal"
    BIDIRECTIONAL = "bidirectional"
    PREFIX = "prefix"


@dataclass(frozen=True)
class ModelArch:
    """Geometry of one transformer stack (all blocks identical)."""

    name: str
    num_blocks: int
    hidden_size: int
    num_heads: int
    ffn_hidden_size: int
    #: number of KV heads (== num_heads unless grouped-query attention)
    num_kv_heads: int | None = None
    #: per-head dimension when it differs from hidden_size / num_heads
    #: (e.g. T5-11B uses 128 heads of width 128 over a 1024-wide model)
    head_dim_override: int | None = None
    #: 3 for gated FFNs (LLaMA/Qwen/Baichuan SwiGLU), 2 for vanilla FFNs
    ffn_matrices: int = 3
    vocab_size: int = 32_000
    max_context: int = 4096
    attention_mask: AttentionMask = AttentionMask.CAUSAL
    #: bytes per weight (1 = INT8)
    weight_bytes_per_param: int = 1
    #: bytes per activation / KV element (1 = INT8)
    activation_bytes: int = 1
    #: for encoder-decoder models: how many of the blocks are encoder blocks
    encoder_blocks: int = 0

    def __post_init__(self) -> None:
        if self.head_dim_override is None and self.hidden_size % self.num_heads != 0:
            raise ConfigurationError(
                f"hidden size {self.hidden_size} not divisible by "
                f"{self.num_heads} heads"
            )
        if self.num_kv_heads is not None and self.num_heads % self.num_kv_heads != 0:
            raise ConfigurationError("num_heads must be a multiple of num_kv_heads")
        if self.encoder_blocks > self.num_blocks:
            raise ConfigurationError("encoder_blocks cannot exceed num_blocks")
        if self.ffn_matrices not in (2, 3):
            raise ConfigurationError("ffn_matrices must be 2 or 3")

    # ------------------------------------------------------------- dimensions

    @property
    def head_dim(self) -> int:
        if self.head_dim_override is not None:
            return self.head_dim_override
        return self.hidden_size // self.num_heads

    @property
    def kv_heads(self) -> int:
        return self.num_kv_heads if self.num_kv_heads is not None else self.num_heads

    @property
    def q_dim(self) -> int:
        """Width of the Q projection output (== hidden size unless overridden)."""
        return self.num_heads * self.head_dim

    @property
    def kv_dim(self) -> int:
        """Width of the K (or V) projection output."""
        return self.kv_heads * self.head_dim

    @property
    def is_decoder_only(self) -> bool:
        return self.encoder_blocks == 0 and self.attention_mask is AttentionMask.CAUSAL

    @property
    def has_encoder(self) -> bool:
        return self.encoder_blocks > 0 or self.attention_mask is not AttentionMask.CAUSAL

    # ---------------------------------------------------------------- weights

    @property
    def attention_weight_params(self) -> int:
        """Parameters of Q/K/V/output projections in one block."""
        qkv = self.hidden_size * (self.q_dim + 2 * self.kv_dim)
        out = self.q_dim * self.hidden_size
        return qkv + out

    @property
    def ffn_weight_params(self) -> int:
        return self.ffn_matrices * self.hidden_size * self.ffn_hidden_size

    @property
    def block_weight_params(self) -> int:
        return self.attention_weight_params + self.ffn_weight_params

    @property
    def block_weight_bytes(self) -> int:
        return self.block_weight_params * self.weight_bytes_per_param

    @property
    def total_weight_params(self) -> int:
        embedding = self.vocab_size * self.hidden_size
        return self.num_blocks * self.block_weight_params + 2 * embedding

    @property
    def total_weight_bytes(self) -> int:
        return self.total_weight_params * self.weight_bytes_per_param

    @property
    def parameter_count_billions(self) -> float:
        return self.total_weight_params / 1e9

    # --------------------------------------------------------------- KV cache

    @property
    def kv_bytes_per_token_per_block(self) -> int:
        """Bytes of K plus V stored for one token in one block."""
        return 2 * self.kv_dim * self.activation_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        return self.num_blocks * self.kv_bytes_per_token_per_block

    def kv_bytes_for_sequence(self, length: int) -> int:
        return length * self.kv_bytes_per_token

    # ------------------------------------------------------------- activations

    @property
    def activation_bytes_per_token(self) -> int:
        """Hidden-state bytes for one token between pipeline stages."""
        return self.hidden_size * self.activation_bytes

    # ---------------------------------------------------------------- compute

    def flops_per_token(self, context_length: int) -> float:
        """Forward-pass multiply-accumulate count for one token.

        Includes the position-dependent attention score/context GEMVs against
        ``context_length`` cached tokens.
        """
        weight_macs = self.block_weight_params
        attention_macs = 2 * self.num_heads * self.head_dim * max(context_length, 1)
        return self.num_blocks * (weight_macs + attention_macs)

    def prefill_flops(self, prompt_length: int) -> float:
        """Multiply-accumulates to prefill a prompt of ``prompt_length`` tokens."""
        weight_macs = prompt_length * self.num_blocks * self.block_weight_params
        attention_macs = (
            self.num_blocks
            * self.num_heads
            * self.head_dim
            * prompt_length
            * (prompt_length + 1)
        )
        return weight_macs + attention_macs

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.parameter_count_billions:.1f}B params, "
            f"{self.num_blocks} blocks, h={self.hidden_size})"
        )


# ---------------------------------------------------------------------------
# Registry of the paper's workloads
# ---------------------------------------------------------------------------


def llama_13b() -> ModelArch:
    return ModelArch(
        name="LLaMA-13B",
        num_blocks=40,
        hidden_size=5120,
        num_heads=40,
        ffn_hidden_size=13824,
    )


def llama_32b() -> ModelArch:
    """The paper's '32B' LLaMA configuration (LLaMA-30B geometry)."""
    return ModelArch(
        name="LLaMA-32B",
        num_blocks=60,
        hidden_size=6656,
        num_heads=52,
        ffn_hidden_size=17920,
    )


def llama_65b() -> ModelArch:
    return ModelArch(
        name="LLaMA-65B",
        num_blocks=80,
        hidden_size=8192,
        num_heads=64,
        ffn_hidden_size=22016,
    )


def baichuan_13b() -> ModelArch:
    return ModelArch(
        name="Baichuan-13B",
        num_blocks=40,
        hidden_size=5120,
        num_heads=40,
        ffn_hidden_size=13696,
        vocab_size=64_000,
    )


def qwen_32b() -> ModelArch:
    return ModelArch(
        name="Qwen-32B",
        num_blocks=64,
        hidden_size=5120,
        num_heads=40,
        num_kv_heads=8,
        ffn_hidden_size=27648,
        vocab_size=152_064,
        max_context=32_768,
    )


def bert_large() -> ModelArch:
    return ModelArch(
        name="BERT-Large",
        num_blocks=24,
        hidden_size=1024,
        num_heads=16,
        ffn_hidden_size=4096,
        ffn_matrices=2,
        vocab_size=30_522,
        max_context=512,
        attention_mask=AttentionMask.BIDIRECTIONAL,
        encoder_blocks=24,
    )


def t5_11b() -> ModelArch:
    return ModelArch(
        name="T5-11B",
        num_blocks=48,
        hidden_size=1024,
        num_heads=128,
        head_dim_override=128,
        ffn_hidden_size=65_536,
        ffn_matrices=2,
        vocab_size=32_128,
        max_context=512,
        attention_mask=AttentionMask.PREFIX,
        encoder_blocks=24,
    )


def generic_llm(billions: float) -> ModelArch:
    """A generic LLaMA-shaped model of roughly ``billions`` parameters.

    Used by the Fig. 1 hardware-scaling-tax study, which sweeps model sizes
    from 7B to 130B.
    """
    known = {
        7.0: (32, 4096, 32, 11008),
        13.0: (40, 5120, 40, 13824),
        19.5: (48, 5632, 44, 15104),
        32.0: (60, 6656, 52, 17920),
        65.0: (80, 8192, 64, 22016),
        130.0: (96, 10240, 80, 27648),
    }
    if billions in known:
        blocks, hidden, heads, ffn = known[billions]
    else:
        # Scale hidden size and depth jointly; keep head_dim = 128.
        hidden = int(round((billions / 13.0) ** (1.0 / 3.0) * 5120 / 128)) * 128
        hidden = max(1024, hidden)
        heads = hidden // 128
        ffn = int(round(2.7 * hidden))
        blocks = max(8, int(round(billions * 1e9 / (12 * hidden * hidden))))
    return ModelArch(
        name=f"Generic-{billions:g}B",
        num_blocks=blocks,
        hidden_size=hidden,
        num_heads=heads,
        ffn_hidden_size=ffn,
    )


MODEL_REGISTRY: dict[str, callable] = {
    "llama-13b": llama_13b,
    "llama-32b": llama_32b,
    "llama-65b": llama_65b,
    "baichuan-13b": baichuan_13b,
    "qwen-32b": qwen_32b,
    "bert-large": bert_large,
    "t5-11b": t5_11b,
}


def get_model(name: str) -> ModelArch:
    """Look up a model architecture by its registry name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise ConfigurationError(
            f"unknown model '{name}'; known models: {sorted(MODEL_REGISTRY)}"
        )
    return MODEL_REGISTRY[key]()


def fits_on_wafer(arch: ModelArch, wafer_sram_bytes: int = 54 * GB) -> bool:
    """Whether the model's weights alone fit in a single wafer's SRAM."""
    return arch.total_weight_bytes <= wafer_sram_bytes
