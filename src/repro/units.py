"""Unit helpers used throughout the Ouroboros reproduction.

All internal quantities use a consistent base unit system:

* time      -- seconds
* energy    -- joules
* data size -- bytes
* power     -- watts
* frequency -- hertz

The constants below make module-level parameter tables readable
(e.g. ``4 * MB`` instead of ``4_194_304``).
"""

from __future__ import annotations

# --- data sizes (bytes) -----------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

BITS_PER_BYTE = 8

# --- time (seconds) ---------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3

# --- energy (joules) --------------------------------------------------------
PJ = 1e-12
NJ = 1e-9
UJ = 1e-6
MJ = 1e-3

# --- power (watts) ----------------------------------------------------------
MW = 1e-3
UW = 1e-6

# --- frequency (hertz) ------------------------------------------------------
MHZ = 1e6
GHZ = 1e9

# --- compute ----------------------------------------------------------------
TERA = 1e12
GIGA = 1e9
MEGA = 1e6


def bytes_to_gb(num_bytes: float) -> float:
    """Convert a byte count to gibibytes (GiB)."""
    return num_bytes / GB


def bytes_to_mb(num_bytes: float) -> float:
    """Convert a byte count to mebibytes (MiB)."""
    return num_bytes / MB


def joules_to_pj(joules: float) -> float:
    """Convert joules to picojoules."""
    return joules / PJ


def seconds_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / US


def tops(ops_per_second: float) -> float:
    """Convert raw operations/second to tera-operations/second."""
    return ops_per_second / TERA
