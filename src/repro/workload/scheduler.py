"""Inter-sequence scheduling (Section 4.4.4).

Policy reproduced from the paper:

* New requests are admitted in the order chosen by a pluggable
  :class:`~repro.workload.policies.SchedulingPolicy` — First-Come-First-Serve
  by default, exactly the paper's behaviour; ``wfq`` (weighted fair queueing
  over tenants) and ``priority`` (strict priority with starvation-free aging)
  reorder admission across tenants.  In open-loop (arrival-time-driven)
  serving a request additionally cannot be admitted before its
  ``arrival_time``; with the default batch traces every arrival is 0.0 and
  the gate is a no-op.
* Decode iterations of already-admitted requests may be scheduled as soon as
  the current input finishes (preemptive interleave of prefill and decode).
* When the KV cache is full, the most recently *admitted* request is
  evicted, new-request admission is suspended until a prior request completes,
  and the evicted request is placed at the *front* of the waiting queue
  (under the tenant-aware policies: the front of its own tenant's queue).
* A per-core occupancy threshold reserves residual capacity for KV growth in
  the decode phase so freshly admitted sequences do not immediately thrash.

The scheduler is deliberately decoupled from the concrete KV-cache manager: it
drives any object that satisfies :class:`KVCapacityProvider`, which both the
distributed dynamic manager and the static baseline implement.  It is equally
decoupled from admission *order*: capacity, eviction and bookkeeping live
here, while the policy object owns which waiting sequence goes next.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Protocol

from ..errors import ConfigurationError, SchedulingError
from .policies import SchedulingPolicy, make_policy
from .requests import Request, Sequence, SequencePhase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .streams import RequestStream


class KVCapacityProvider(Protocol):
    """What the scheduler needs from a KV-cache manager."""

    def try_admit(self, sequence: Sequence) -> bool:
        """Reserve initial KV space for a sequence; return False if full."""
        ...

    def release(self, sequence: Sequence) -> None:
        """Free all KV space held by a sequence (completion or eviction)."""
        ...

    def append_tokens(self, sequence: Sequence, count: int = 1) -> bool:
        """Reserve KV space for ``count`` more tokens; return False if full."""
        ...


@dataclass
class SchedulerStats:
    """Counters describing scheduler behaviour over a run."""

    admitted: int = 0
    completed: int = 0
    evictions: int = 0
    recomputed_tokens: int = 0
    #: evictions initiated by a preemptive policy displacing a resident
    #: sequence for a higher-ranked arrival (subset of ``evictions``)
    preemptions: int = 0
    #: tokens discarded by preemptions (subset of ``recomputed_tokens``)
    preempted_tokens: int = 0
    rejected_admissions: int = 0
    #: requests permanently dropped by the overload shedder
    shed_requests: int = 0
    #: shed-with-backoff events (the request re-enters the queue later)
    shed_retries: int = 0


@dataclass
class InterSequenceScheduler:
    """Policy-ordered scheduler with eviction of the most recent admission.

    ``policy`` selects the admission order: a registry key (``fcfs`` —
    the default, the paper's FCFS queue — ``wfq`` or ``priority``) or a
    ready-built :class:`~repro.workload.policies.SchedulingPolicy` instance
    when the caller needs to parameterise it (e.g. a priority aging rate).
    """

    kv_provider: KVCapacityProvider
    #: maximum sequences resident at once (None = limited only by KV capacity)
    max_active_sequences: int | None = None
    stats: SchedulerStats = field(default_factory=SchedulerStats)
    #: admission-order policy (registry key or instance)
    policy: SchedulingPolicy | str = "fcfs"
    #: bounded admission queue: waiting arrived requests beyond this depth are
    #: shed (None = unbounded, shedding off — the historical behaviour)
    max_queue_depth: int | None = None
    #: drop waiting requests whose TTFT SLO is already unmeetable (the time
    #: since arrival alone exceeds the deadline, so admission cannot save it)
    shed_deadline: bool = False
    #: service-time slack for deadline shedding: drop once the remaining TTFT
    #: budget falls below this, because even an immediate admission would
    #: still need roughly this long to produce the first token
    shed_headroom_s: float = 0.0
    #: times a depth-shed request is re-queued with backoff before the drop
    #: becomes permanent (0 = depth overflow drops immediately)
    shed_retries: int = 0
    #: base retry backoff in seconds; doubles on every further shed
    shed_backoff_s: float = 0.0
    #: allow the policy to displace resident sequences for higher-ranked
    #: arrivals (``select_victim``); False = admission-order-only, the
    #: historical behaviour
    preemptive: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.policy, str):
            self.policy = make_policy(self.policy)
        self._active: list[Sequence] = []  # in admission order (oldest first)
        self._active_ids: set[int] = set()  # O(1) membership mirror of _active
        self._completed: list[Sequence] = []
        #: set when an eviction happened; cleared when a request completes
        self._admission_suspended = False
        #: requests already counted in stats.rejected_admissions (a request
        #: blocked at the head of the queue is rejected once, not once per
        #: epoch it stays blocked)
        self._rejected_ids: set[int] = set()
        #: requests permanently dropped by the overload shedder
        self._shed: list[Sequence] = []
        #: tenant -> SLOTarget lookup for deadline shedding (set by the
        #: engine from the trace; None disables deadline shedding)
        self.slo_lookup: Callable[[str], object] | None = None
        #: admission frozen until this instant (transient fault injection)
        self.admission_stall_until = 0.0
        #: lazy arrival stream the scheduler pulls from as time advances
        #: (None = everything was submitted up front, the historical mode)
        self._stream: RequestStream | None = None
        #: keep the ``_completed``/``_shed`` sequence lists; the engines turn
        #: this off for streaming runs, where holding every finished sequence
        #: would defeat the O(active) memory bound (stats fold incrementally)
        self.retain_history = True
        #: observer invoked on every permanent shed (the engines' streaming
        #: stats accumulator; fires in both retention modes)
        self.on_shed: Callable[[Sequence], None] | None = None

    # ------------------------------------------------------------------ stream

    def attach_stream(self, stream: "RequestStream") -> None:
        """Pull arrivals lazily from ``stream`` instead of a bulk submit.

        ``fill`` drains every request whose arrival time has passed into the
        policy queue before admitting, so admission order, next-arrival
        queries and shedding behave bit-for-bit as if the whole trace had
        been submitted up front.
        """
        if self._stream is not None:
            raise ConfigurationError("scheduler already has an attached stream")
        if len(self.policy) or self._active or self._completed:
            raise ConfigurationError(
                "attach_stream requires a fresh scheduler (no queued work)"
            )
        self._stream = stream

    @property
    def stream(self) -> "RequestStream | None":
        return self._stream

    def _pull_arrivals(self, time: float) -> None:
        """Move every stream request with ``arrival <= time`` into the queue."""
        stream = self._stream
        if stream is None:
            return
        while (arrival := stream.peek_arrival()) is not None and arrival <= time:
            self.submit(stream.pop())

    def _stream_head_candidates(self) -> list[float]:
        """Pending stream arrivals that can affect next-arrival queries."""
        if self._stream is None or self._stream.exhausted:
            return []
        return self.policy.pending_head_arrivals(self._stream.pending_arrivals())

    # ------------------------------------------------------------------ intake

    def submit(self, request: Request) -> Sequence:
        """Queue a new request (admission order chosen by the policy)."""
        sequence = Sequence(request=request)
        self.policy.push(sequence)
        return sequence

    def submit_all(self, requests: list[Request]) -> list[Sequence]:
        return [self.submit(request) for request in requests]

    def ingest(self, requests: list[Request]) -> list[Sequence]:
        """Live arrival feed hook: queue requests that landed mid-run.

        The daemon's ingestion path (``repro serve --daemon``).  Queue order
        among equals is submission order, exactly as if the requests had been
        in the trace from the start — the engine's watermark gates guarantee
        every request is ingested before the first fill that could admit it,
        which is what keeps daemon replays bit-for-bit equal to batch runs.
        """
        return self.submit_all(requests)

    # ------------------------------------------------------------------- state

    @property
    def waiting(self) -> list[Sequence]:
        return self.policy.waiting()

    @property
    def active(self) -> list[Sequence]:
        """Snapshot of the active sequences in admission order.

        The copy makes ``for seq in scheduler.active: scheduler.complete(seq)``
        safe; the epoch loop's per-sequence membership checks go through the
        O(1) :meth:`is_active` instead of this list.
        """
        return list(self._active)

    @property
    def completed(self) -> list[Sequence]:
        return list(self._completed)

    @property
    def shed(self) -> list[Sequence]:
        """Requests permanently dropped by the overload shedder."""
        return list(self._shed)

    @property
    def num_active(self) -> int:
        return len(self._active)

    def queue_depths(self) -> dict[str, int]:
        """Waiting-queue depth per tenant.

        Feeds both the daemon's rolling metrics and the ``queue_depth`` field
        of the final per-tenant :class:`~repro.results.TenantStats` (0 after
        a drained run).
        """
        depths: dict[str, int] = {}
        for sequence in self.policy.waiting():
            tenant = sequence.request.tenant
            depths[tenant] = depths.get(tenant, 0) + 1
        return depths

    def is_active(self, sequence: Sequence) -> bool:
        """O(1) membership test (the hot check of the epoch loop)."""
        return sequence.sequence_id in self._active_ids

    @property
    def all_done(self) -> bool:
        return (
            len(self.policy) == 0
            and not self._active
            and (self._stream is None or self._stream.exhausted)
        )

    @property
    def has_pending(self) -> bool:
        """True while any work is queued or still inside the arrival stream.

        O(1), unlike ``waiting`` which materialises the queue — the engines'
        idle-skip loop polls this every epoch.
        """
        return len(self.policy) > 0 or (
            self._stream is not None and not self._stream.exhausted
        )

    def next_arrival_time(self) -> float | None:
        """Instant admission can next make progress (None when nothing waits).

        Policy-defined: under FCFS this is the *queue head's* arrival time —
        a later-submitted request that happens to arrive earlier still waits
        behind the head — while the tenant-aware policies report the earliest
        arrival among the tenant queue heads, any of which can be admitted.
        The engines use it to advance the clock across idle gaps instead of
        stalling, and to split epochs at admission boundaries, so the split
        boundary automatically respects the policy's order.

        With an attached stream, not-yet-pulled arrivals that would have been
        candidate heads under full submission (the policy decides which — see
        ``pending_head_arrivals``) compete with the queued answer.
        """
        best = self.policy.next_arrival_time()
        for arrival in self._stream_head_candidates():
            if best is None or arrival < best:
                best = arrival
        return best

    def next_future_arrival(self, time: float) -> float | None:
        """Earliest candidate arrival strictly after ``time`` (policy-defined).

        The engines split epochs at this boundary.  FCFS reports its head's
        arrival only; the tenant-aware policies report the earliest future
        tenant-head arrival even while another (already arrived) head is
        blocked on capacity, because the newcomer may be admitted instantly.
        Stream-pending candidate arrivals compete exactly as in
        :meth:`next_arrival_time`.
        """
        best = self.policy.next_future_arrival(time)
        for arrival in self._stream_head_candidates():
            if arrival > time and (best is None or arrival < best):
                best = arrival
        return best

    def has_arrived_waiting(self, time: float) -> bool:
        """True when the policy has an admission candidate arrived at ``time``.

        Distinguishes "every eligible request is blocked because it has not
        arrived yet" (engine should skip forward) from "one arrived but won't
        fit" (a genuine capacity stall).
        """
        return self.policy.select(time) is not None

    def _remove_active(self, sequence: Sequence) -> None:
        """Drop a sequence from the active list by identity (no dataclass eq)."""
        for index in range(len(self._active) - 1, -1, -1):
            if self._active[index] is sequence:
                del self._active[index]
                break
        self._active_ids.discard(sequence.sequence_id)

    # -------------------------------------------------------------- admission

    def fill(self, time: float = 0.0) -> list[Sequence]:
        """Admit arrived waiting sequences while capacity allows.

        The policy picks each admission candidate.  A candidate blocked on
        capacity is excluded and the policy asked again: under FCFS the
        excluded head yields no further candidate (the classic head-of-line
        block, bit-for-bit the historical behaviour), while the tenant-aware
        policies offer another tenant's head — a 4k-token batch request that
        does not fit must not block an interactive request that would.
        Returns the admitted sequences.
        """
        self._pull_arrivals(time)
        if time < self.admission_stall_until:
            # A transient fault froze admission; already-active sequences
            # keep decoding, but nothing new enters until the stall lifts.
            return []
        self._shed_overload(time)
        admitted: list[Sequence] = []
        blocked: set[int] = set()
        while len(self.policy):
            if self._admission_suspended and self._active:
                # Admission is suspended after an eviction until a prior
                # request completes (Section 4.4.4); re-admitting immediately
                # would thrash the cache.  If nothing is active there is no
                # request to wait for, so admission resumes.
                break
            at_cap = (
                self.max_active_sequences is not None
                and len(self._active) >= self.max_active_sequences
            )
            if at_cap and not self.preemptive:
                break
            candidate = self.policy.select(time, exclude=frozenset(blocked))
            if candidate is None:
                break
            if at_cap:
                # Preemptive path: the concurrency cap is full, so the
                # candidate enters only by displacing a strictly lower-ranked
                # resident.  A candidate that cannot is skipped (not counted
                # as a capacity rejection — the KV cache may have room), and
                # a higher-ranked tenant's head gets its chance.
                if not self._preempt_for(candidate):
                    blocked.add(candidate.sequence_id)
                    continue
            fits = self.kv_provider.try_admit(candidate)
            while not fits and self.preemptive:
                if getattr(self.kv_provider, "last_failure_quota_bound", False):
                    # The candidate's own tenant quota is the binding
                    # constraint; displacing other tenants cannot help.
                    break
                if not self._preempt_for(candidate):
                    break
                fits = self.kv_provider.try_admit(candidate)
            if not fits:
                used_blocks = getattr(self.kv_provider, "tenant_used_blocks", None)
                if (
                    getattr(self.kv_provider, "last_failure_quota_bound", False)
                    and used_blocks is not None
                    and used_blocks(candidate.tenant) == 0
                ):
                    # The tenant holds nothing, yet its quota still rejects
                    # the admission: this sequence can never fit under the
                    # quota (quotas are static per run), so drop it
                    # permanently instead of livelocking the drain.
                    self.stats.rejected_admissions += 1
                    self._shed_permanently(candidate)
                    continue
                if candidate.sequence_id not in self._rejected_ids:
                    self._rejected_ids.add(candidate.sequence_id)
                    self.stats.rejected_admissions += 1
                blocked.add(candidate.sequence_id)
                continue
            self.policy.pop(candidate, time)
            candidate.start(time)
            self._active.append(candidate)
            self._active_ids.add(candidate.sequence_id)
            self.stats.admitted += 1
            # The id can never be re-blocked without an eviction (which
            # discards it too); dropping it here keeps the dedup set at
            # O(currently blocked) instead of O(every rejection ever).
            self._rejected_ids.discard(candidate.sequence_id)
            admitted.append(candidate)
        if self.preemptive:
            # A sequence admitted earlier in this fill may have been
            # preempted by a later, higher-ranked candidate; the caller only
            # sees sequences that are still resident.
            admitted = [s for s in admitted if s.sequence_id in self._active_ids]
        return admitted

    # --------------------------------------------------------------- shedding

    def _shed_overload(self, time: float) -> None:
        """Apply deadline-aware and depth-bound shedding to the waiting queue.

        Only never-admitted (``WAITING``-phase) requests are shed: an evicted
        sequence re-queued at the front represents in-flight work whose KV
        must be rebuilt, not a fresh admission the system may refuse.
        """
        if not (self.shed_deadline or self.max_queue_depth is not None):
            return
        if self.shed_deadline and self.slo_lookup is not None:
            for sequence in self.policy.waiting():
                if sequence.phase is not SequencePhase.WAITING:
                    continue
                if sequence.eligible_time > time:
                    continue
                slo = self.slo_lookup(sequence.tenant)
                ttft_s = getattr(slo, "ttft_s", None)
                if ttft_s is None:
                    continue
                if time - sequence.request.arrival_time > ttft_s - self.shed_headroom_s:
                    # The remaining TTFT budget is below the service headroom:
                    # even an immediate admission would miss the deadline, so
                    # drop the request now instead of burning wafer time on a
                    # guaranteed SLO miss.
                    self._shed_permanently(sequence)
        if self.max_queue_depth is not None:
            eligible = [
                sequence
                for sequence in self.policy.waiting()
                if sequence.phase is SequencePhase.WAITING
                and sequence.eligible_time <= time
            ]
            if len(eligible) > self.max_queue_depth:
                eligible.sort(key=lambda s: (s.request.arrival_time, s.sequence_id))
                for sequence in eligible[self.max_queue_depth :]:
                    self._shed_or_backoff(sequence, time)

    def _shed_permanently(self, sequence: Sequence) -> None:
        if self.policy.remove(sequence):
            if self.retain_history:
                self._shed.append(sequence)
            self.stats.shed_requests += 1
            self._rejected_ids.discard(sequence.sequence_id)
            if self.on_shed is not None:
                self.on_shed(sequence)

    def _shed_or_backoff(self, sequence: Sequence, time: float) -> None:
        """Depth overflow: back the request off, or drop it once retries run out."""
        if sequence.retries >= self.shed_retries:
            self._shed_permanently(sequence)
            return
        sequence.retries += 1
        sequence.retry_at = time + self.shed_backoff_s * (2 ** (sequence.retries - 1))
        self.stats.shed_retries += 1

    # ------------------------------------------------------------- preemption

    def _preempt_for(self, candidate: Sequence) -> bool:
        """Displace one policy-chosen victim so ``candidate`` can be admitted.

        Mirrors :meth:`recompute_sequence`, not :meth:`_evict`: the victim's
        KV is released and it re-enters the front of its own tenant's queue
        with tenant/priority preserved, but admission is *not* suspended —
        the whole point of the eviction is to admit the candidate right now.
        Returns False when the policy declines to nominate a victim.
        """
        victim = self.policy.select_victim(candidate, self._active)
        if victim is None:
            return False
        self._remove_active(victim)
        self.kv_provider.release(victim)
        discarded = victim.evict()
        victim.preemptions += 1
        self.stats.preemptions += 1
        self.stats.preempted_tokens += discarded
        self.stats.evictions += 1
        self.stats.recomputed_tokens += discarded
        self.policy.push_front(victim)
        self._rejected_ids.discard(victim.sequence_id)
        return True

    # --------------------------------------------------------------- eviction

    def _evict(self, victim: Sequence) -> Sequence:
        """Evict ``victim``: release its KV space, requeue it at the front."""
        self._remove_active(victim)
        self.kv_provider.release(victim)
        discarded = victim.evict()
        self.stats.evictions += 1
        self.stats.recomputed_tokens += discarded
        self.policy.push_front(victim)
        self._admission_suspended = True
        # The victim keeps its sequence id in the waiting queue, so a
        # post-eviction capacity rejection is a *new* rejection and must be
        # countable again (the once-per-blocked-stint dedup in fill() would
        # otherwise swallow it forever).
        self._rejected_ids.discard(victim.sequence_id)
        return victim

    def evict_most_recent(self) -> Sequence | None:
        """Evict the most recently *admitted* active sequence (cache full)."""
        if not self._active:
            return None
        return self._evict(self._active[-1])

    def recompute_sequence(self, sequence: Sequence) -> int:
        """Requeue an active sequence whose KV blocks a fault destroyed.

        Like an eviction — the cached context is gone and must be
        re-prefilled, with tenant/priority preserved by re-entering at the
        front of the owning queue — but attributed to the *fault*, not the
        scheduler: the capacity-pressure counters and the post-eviction
        admission freeze stay untouched.  Returns the discarded token count.
        """
        if sequence.sequence_id not in self._active_ids:
            raise SchedulingError(
                f"sequence {sequence.sequence_id} is not active and cannot "
                "be recomputed"
            )
        self._remove_active(sequence)
        self.kv_provider.release(sequence)
        discarded = sequence.evict()
        self.policy.push_front(sequence)
        self._rejected_ids.discard(sequence.sequence_id)
        return discarded

    # -------------------------------------------------------------- completion

    def complete(self, sequence: Sequence, time: float = 0.0) -> None:
        """Mark an active sequence complete and release its KV space."""
        if sequence.sequence_id not in self._active_ids:
            raise SchedulingError(
                f"sequence {sequence.sequence_id} is not active and cannot complete"
            )
        self._remove_active(sequence)
        self.kv_provider.release(sequence)
        sequence.complete(time)
        if self.retain_history:
            self._completed.append(sequence)
        self.stats.completed += 1
        # A prior request completed: new-request admission may resume.
        self._admission_suspended = False

    # ------------------------------------------------------------ token growth

    def grow_sequence(self, sequence: Sequence, count: int = 1) -> bool:
        """Reserve KV space for the next ``count`` tokens of ``sequence``.

        If the KV cache is full the scheduler applies the paper's policy:
        evict the most recently admitted sequence(s) — never ``sequence``
        itself — until the reservation succeeds or no other victim remains.
        """
        while not self.kv_provider.append_tokens(sequence, count):
            victim = self._growth_victim(sequence)
            if victim is None:
                if self._quota_doomed(sequence):
                    # The tenant's entire holding is this sequence, and one
                    # more growth still breaks its static cap: the context
                    # only ever grows, so no completion, release or eviction
                    # can unblock it.  Shed now instead of livelocking the
                    # epoch loop on a sequence that can never finish.
                    self._shed_doomed_active(sequence)
                return False
            self._evict(victim)
        return True

    def _quota_doomed(self, sequence: Sequence) -> bool:
        """The growth failed on ``sequence``'s own tenant quota while the
        tenant's only resident blocks are the sequence's own — its working
        set alone exceeds the cap, permanently."""
        if not getattr(self.kv_provider, "last_failure_quota_bound", False):
            return False
        used_blocks = getattr(self.kv_provider, "tenant_used_blocks", None)
        blocks_held = getattr(self.kv_provider, "blocks_held", None)
        if used_blocks is None or blocks_held is None:
            return False
        return used_blocks(sequence.tenant) == blocks_held(sequence.sequence_id)

    def _shed_doomed_active(self, sequence: Sequence) -> None:
        """Permanently drop an active sequence whose KV working set can never
        fit its tenant's quota (the mid-flight mirror of the admission-side
        impossible-fit shed).  The discarded tokens are shed work, not
        recompute debt, so the eviction counters stay untouched."""
        self._remove_active(sequence)
        self.kv_provider.release(sequence)
        sequence.evict()
        if self.retain_history:
            self._shed.append(sequence)
        self.stats.shed_requests += 1
        self._rejected_ids.discard(sequence.sequence_id)
        if self.on_shed is not None:
            self.on_shed(sequence)

    def _growth_victim(self, sequence: Sequence) -> Sequence | None:
        """The sequence evicted when ``sequence``'s KV growth does not fit.

        Default: the most recently admitted active sequence, never
        ``sequence`` itself (the paper's policy).  When the growth failed on
        the tenant's *own KV quota* (the manager's
        ``last_failure_quota_bound`` flag), pressure is intra-tenant first:
        only evicting the same tenant's most recently admitted resident
        frees quota headroom — displacing another tenant would thrash their
        cache without unblocking this growth, so with no same-tenant victim
        the growth simply fails.
        """
        if getattr(self.kv_provider, "last_failure_quota_bound", False):
            for index in range(len(self._active) - 1, -1, -1):
                candidate = self._active[index]
                if candidate is not sequence and candidate.tenant == sequence.tenant:
                    return candidate
            return None
        if len(self._active) <= 1:
            return None
        victim = self._active[-1]
        if victim is sequence:
            # Never evict the sequence we are trying to grow; take the
            # next most recently admitted instead (it exists: the guard
            # above leaves at least two active sequences).
            victim = self._active[-2]
        return victim

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict[str, Any]:
        """JSON-able scheduler state for a bit-for-bit checkpoint."""
        return {
            "active": [sequence.sequence_id for sequence in self._active],
            "completed": [sequence.sequence_id for sequence in self._completed],
            "shed": [sequence.sequence_id for sequence in self._shed],
            "admission_suspended": self._admission_suspended,
            "rejected_ids": sorted(self._rejected_ids),
            "admission_stall_until": self.admission_stall_until,
            "stats": asdict(self.stats),
            "policy": self.policy.snapshot_state(),
        }

    def restore_state(
        self, state: dict[str, Any], by_id: dict[int, Sequence]
    ) -> None:
        """Rebuild scheduler state from :meth:`snapshot_state` output.

        ``by_id`` maps request ids to the freshly rebuilt sequences of the
        resumed run; order inside every restored list is the snapshot's.
        """
        self._active = [by_id[seq_id] for seq_id in state["active"]]
        self._active_ids = {sequence.sequence_id for sequence in self._active}
        self._completed = [by_id[seq_id] for seq_id in state["completed"]]
        self._shed = [by_id[seq_id] for seq_id in state["shed"]]
        self._admission_suspended = state["admission_suspended"]
        self._rejected_ids = set(state["rejected_ids"])
        self.admission_stall_until = state["admission_stall_until"]
        self.stats = SchedulerStats(**state["stats"])
        self.policy.restore_state(state["policy"], by_id)
