"""Trace generation: turn length distributions into batches of requests.

Single-tenant traces come from :class:`TraceGenerator` (one distribution, one
Poisson arrival process).  Multi-tenant traces interleave several independent
:class:`TenantSpec` streams — each with its own length distribution, request
count and arrival process — into one arrival-ordered trace whose requests
carry their tenant id, which is what the per-tenant latency/goodput accounting
in the engines keys on.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .distributions import LengthDistribution, get_distribution
from .requests import Request, SLOTarget


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: a length distribution plus a request count."""

    name: str
    distribution: LengthDistribution
    num_requests: int = 1000
    seed: int = 0
    #: mean Poisson arrival rate in requests/s (0 = closed batch, all at t=0)
    arrival_rate_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ConfigurationError("num_requests must be positive")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a multi-tenant serving workload.

    ``workload`` names a length distribution (any string
    :func:`~repro.workload.distributions.get_distribution` accepts), and the
    tenant's requests arrive as an independent Poisson process at
    ``arrival_rate_per_s`` (0 = all at t=0).  The spec is frozen and
    serializable so it can ride inside a
    :class:`~repro.api.DeploymentSpec` and the sweep-cache keys.
    """

    name: str
    workload: str
    num_requests: int = 100
    #: mean Poisson arrival rate in requests/s (0 = all requests at t=0)
    arrival_rate_per_s: float = 0.0
    #: tenant-specific SLO; overrides the deployment-wide target for this
    #: tenant's requests (interactive and batch tenants rarely share one)
    slo: SLOTarget | None = None
    #: weighted-fair-queueing share of the tenant (admission virtual time
    #: advances by ``total_tokens / weight``; only the ``wfq`` policy reads it)
    weight: float = 1.0
    #: static admission priority (higher = admitted first; only the
    #: ``priority`` policy reads it, with aging closing the gaps over time)
    priority: int = 0
    #: fraction of the KV cache's blocks this tenant may occupy (None = no
    #: cap).  0.0 is a valid cap that rejects every admission; the KV
    #: managers floor the fraction to whole blocks.  Quotas across tenants
    #: may sum to at most 1.0 (validated by ``DeploymentSpec.validate``).
    kv_quota: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.num_requests <= 0:
            raise ConfigurationError("tenant num_requests must be positive")
        if self.arrival_rate_per_s < 0:
            raise ConfigurationError("tenant arrival_rate_per_s cannot be negative")
        if self.weight <= 0:
            raise ConfigurationError("tenant weight must be positive")
        if self.kv_quota is not None and not 0.0 <= self.kv_quota <= 1.0:
            raise ConfigurationError("tenant kv_quota must lie in [0, 1]")
        get_distribution(self.workload)  # validate eagerly


@dataclass
class Trace:
    """A generated batch of requests."""

    spec: WorkloadSpec
    requests: list[Request] = field(default_factory=list)
    #: per-request SLO the serving engines evaluate goodput against (optional)
    slo: SLOTarget | None = None
    #: tenant-specific SLO overrides, keyed by tenant id
    tenant_slos: dict[str, SLOTarget] = field(default_factory=dict)
    #: per-tenant KV-block quota fractions, keyed by tenant id (see
    #: :attr:`TenantSpec.kv_quota`; empty = no tenant is capped)
    tenant_quotas: dict[str, float] = field(default_factory=dict)

    def slo_for(self, tenant: str) -> SLOTarget | None:
        """The SLO a tenant's requests are judged by (override, else global)."""
        return self.tenant_slos.get(tenant, self.slo)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def total_prefill_tokens(self) -> int:
        return sum(request.prefill_length for request in self.requests)

    @property
    def total_decode_tokens(self) -> int:
        return sum(request.decode_length for request in self.requests)

    @property
    def total_tokens(self) -> int:
        return self.total_prefill_tokens + self.total_decode_tokens

    @property
    def mean_prefill_length(self) -> float:
        return self.total_prefill_tokens / max(1, len(self.requests))

    @property
    def mean_decode_length(self) -> float:
        return self.total_decode_tokens / max(1, len(self.requests))

    def summary(self) -> dict[str, float]:
        prefills = [request.prefill_length for request in self.requests]
        decodes = [request.decode_length for request in self.requests]
        return {
            "num_requests": len(self.requests),
            "mean_prefill": float(np.mean(prefills)),
            "max_prefill": float(np.max(prefills)),
            "mean_decode": float(np.mean(decodes)),
            "max_decode": float(np.max(decodes)),
            "total_tokens": float(self.total_tokens),
        }


class TraceGenerator:
    """Generates reproducible request traces from a workload spec."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    def generate(self) -> Trace:
        rng = np.random.default_rng(self.spec.seed)
        # Arrival gaps come from an independent stream: switching a workload
        # between batch and open-loop must never change the sampled request
        # lengths, because the arrival sweep (fig22) anchors its load
        # fractions to the closed-batch service rate of the *same* mix.
        arrival_rng = np.random.default_rng((self.spec.seed, 1))
        requests: list[Request] = []
        arrival = 0.0
        for request_id in range(self.spec.num_requests):
            sample = self.spec.distribution.sample(rng)
            if self.spec.arrival_rate_per_s > 0:
                arrival += float(arrival_rng.exponential(1.0 / self.spec.arrival_rate_per_s))
            requests.append(
                Request(
                    request_id=request_id,
                    prefill_length=sample.prefill_length,
                    decode_length=sample.decode_length,
                    arrival_time=arrival,
                )
            )
        return Trace(spec=self.spec, requests=requests)


def generate_multi_tenant_trace(
    tenants: tuple[TenantSpec, ...] | list[TenantSpec],
    seed: int = 0,
    slo: SLOTarget | None = None,
) -> Trace:
    """Interleave independent per-tenant request streams into one trace.

    Every tenant samples lengths and arrival gaps from rng streams derived
    from ``(seed, tenant index)``, so adding a tenant (or changing its rate)
    never perturbs another tenant's requests.  The merged trace is sorted by
    arrival time (ties broken by tenant order, then per-tenant order) and
    request ids are assigned in that order, which makes the FCFS scheduler's
    queue order equal arrival order.

    Since the streaming refactor this is a shim that drains the lazy
    heap-merged stream (:func:`~repro.workload.streams.multi_tenant_stream`);
    the stream's pop order is the exact sort key above, so the materialised
    trace is bitwise identical to the historical sort-then-enumerate output.
    """
    from .streams import multi_tenant_stream  # local: streams imports us

    return multi_tenant_stream(tenants, seed=seed, slo=slo).materialize()


def make_workload(
    name: str,
    num_requests: int = 1000,
    seed: int = 0,
    arrival_rate_per_s: float = 0.0,
) -> WorkloadSpec:
    """Build one of the paper's workload settings by name.

    Recognised names: ``wikitext2``, ``lp128_ld2048``, ``lp2048_ld128``,
    ``lp2048_ld2048``.  A nonzero ``arrival_rate_per_s`` turns the batch into
    an open-loop trace with Poisson arrivals at that mean rate.
    """
    distribution = get_distribution(name)
    return WorkloadSpec(
        name=distribution.name,
        distribution=distribution,
        num_requests=num_requests,
        seed=seed,
        arrival_rate_per_s=arrival_rate_per_s,
    )


def generate_trace(
    name: str,
    num_requests: int = 1000,
    seed: int = 0,
    arrival_rate_per_s: float = 0.0,
) -> Trace:
    """Convenience wrapper: build a workload spec and generate its trace."""
    return TraceGenerator(
        make_workload(name, num_requests, seed, arrival_rate_per_s)
    ).generate()


PAPER_WORKLOADS = ("wikitext2", "lp128_ld2048", "lp2048_ld128", "lp2048_ld2048")
