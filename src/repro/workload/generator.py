"""Trace generation: turn a length distribution into a batch of requests."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .distributions import LengthDistribution, get_distribution
from .requests import Request


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: a length distribution plus a request count."""

    name: str
    distribution: LengthDistribution
    num_requests: int = 1000
    seed: int = 0
    #: mean Poisson arrival rate in requests/s (0 = closed batch, all at t=0)
    arrival_rate_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ConfigurationError("num_requests must be positive")


@dataclass
class Trace:
    """A generated batch of requests."""

    spec: WorkloadSpec
    requests: list[Request] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def total_prefill_tokens(self) -> int:
        return sum(request.prefill_length for request in self.requests)

    @property
    def total_decode_tokens(self) -> int:
        return sum(request.decode_length for request in self.requests)

    @property
    def total_tokens(self) -> int:
        return self.total_prefill_tokens + self.total_decode_tokens

    @property
    def mean_prefill_length(self) -> float:
        return self.total_prefill_tokens / max(1, len(self.requests))

    @property
    def mean_decode_length(self) -> float:
        return self.total_decode_tokens / max(1, len(self.requests))

    def summary(self) -> dict[str, float]:
        prefills = [request.prefill_length for request in self.requests]
        decodes = [request.decode_length for request in self.requests]
        return {
            "num_requests": len(self.requests),
            "mean_prefill": float(np.mean(prefills)),
            "max_prefill": float(np.max(prefills)),
            "mean_decode": float(np.mean(decodes)),
            "max_decode": float(np.max(decodes)),
            "total_tokens": float(self.total_tokens),
        }


class TraceGenerator:
    """Generates reproducible request traces from a workload spec."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    def generate(self) -> Trace:
        rng = np.random.default_rng(self.spec.seed)
        # Arrival gaps come from an independent stream: switching a workload
        # between batch and open-loop must never change the sampled request
        # lengths, because the arrival sweep (fig22) anchors its load
        # fractions to the closed-batch service rate of the *same* mix.
        arrival_rng = np.random.default_rng((self.spec.seed, 1))
        requests: list[Request] = []
        arrival = 0.0
        for request_id in range(self.spec.num_requests):
            sample = self.spec.distribution.sample(rng)
            if self.spec.arrival_rate_per_s > 0:
                arrival += float(arrival_rng.exponential(1.0 / self.spec.arrival_rate_per_s))
            requests.append(
                Request(
                    request_id=request_id,
                    prefill_length=sample.prefill_length,
                    decode_length=sample.decode_length,
                    arrival_time=arrival,
                )
            )
        return Trace(spec=self.spec, requests=requests)


def make_workload(
    name: str,
    num_requests: int = 1000,
    seed: int = 0,
    arrival_rate_per_s: float = 0.0,
) -> WorkloadSpec:
    """Build one of the paper's workload settings by name.

    Recognised names: ``wikitext2``, ``lp128_ld2048``, ``lp2048_ld128``,
    ``lp2048_ld2048``.  A nonzero ``arrival_rate_per_s`` turns the batch into
    an open-loop trace with Poisson arrivals at that mean rate.
    """
    distribution = get_distribution(name)
    return WorkloadSpec(
        name=distribution.name,
        distribution=distribution,
        num_requests=num_requests,
        seed=seed,
        arrival_rate_per_s=arrival_rate_per_s,
    )


def generate_trace(
    name: str,
    num_requests: int = 1000,
    seed: int = 0,
    arrival_rate_per_s: float = 0.0,
) -> Trace:
    """Convenience wrapper: build a workload spec and generate its trace."""
    return TraceGenerator(
        make_workload(name, num_requests, seed, arrival_rate_per_s)
    ).generate()


PAPER_WORKLOADS = ("wikitext2", "lp128_ld2048", "lp2048_ld128", "lp2048_ld2048")
