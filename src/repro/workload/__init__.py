"""Workload generation and inter-sequence scheduling."""

from .distributions import (
    LP128_LD2048,
    LP2048_LD128,
    LP2048_LD2048,
    NAMED_DISTRIBUTIONS,
    WIKITEXT2,
    FixedLengthDistribution,
    LengthDistribution,
    LengthSample,
    UniformLengthDistribution,
    WikiTextLikeDistribution,
    get_distribution,
)
from .generator import (
    PAPER_WORKLOADS,
    Trace,
    TraceGenerator,
    WorkloadSpec,
    generate_trace,
    make_workload,
)
from .policies import (
    POLICY_NAMES,
    POLICY_REGISTRY,
    FCFSPolicy,
    PriorityAgingPolicy,
    SchedulingPolicy,
    WFQPolicy,
    make_policy,
)
from .requests import Request, Sequence, SequencePhase
from .scheduler import InterSequenceScheduler, KVCapacityProvider, SchedulerStats

__all__ = [
    "LengthDistribution",
    "LengthSample",
    "FixedLengthDistribution",
    "WikiTextLikeDistribution",
    "UniformLengthDistribution",
    "WIKITEXT2",
    "LP128_LD2048",
    "LP2048_LD128",
    "LP2048_LD2048",
    "NAMED_DISTRIBUTIONS",
    "get_distribution",
    "WorkloadSpec",
    "Trace",
    "TraceGenerator",
    "make_workload",
    "generate_trace",
    "PAPER_WORKLOADS",
    "Request",
    "Sequence",
    "SequencePhase",
    "InterSequenceScheduler",
    "KVCapacityProvider",
    "SchedulerStats",
    "SchedulingPolicy",
    "FCFSPolicy",
    "WFQPolicy",
    "PriorityAgingPolicy",
    "POLICY_REGISTRY",
    "POLICY_NAMES",
    "make_policy",
]
