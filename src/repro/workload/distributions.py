"""Sequence-length distributions for workload generation.

The paper evaluates on WikiText-2-derived request lengths plus three fixed
(prefill, decode) settings: (128, 2048), (2048, 128) and (2048, 2048).

WikiText-2 itself is not shipped with this repository (offline build); instead
``WikiTextLikeDistribution`` draws prompt/output lengths from a seeded
lognormal mixture whose summary statistics match the WikiText-2 article-length
profile (median a few hundred tokens, a heavy tail of multi-thousand-token
articles).  Only the *length distribution* matters to the simulator, so this
substitution preserves the behaviour that drives the evaluation: high variance
across requests, which is exactly what creates sequence-grained pipeline
bubbles.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class LengthSample:
    """One request's prompt and output lengths."""

    prefill_length: int
    decode_length: int


class LengthDistribution:
    """Interface for request-length samplers."""

    name: str = "base"

    def sample(self, rng: np.random.Generator) -> LengthSample:
        raise NotImplementedError

    def sample_many(self, count: int, seed: int | None = 0) -> list[LengthSample]:
        rng = np.random.default_rng(seed)
        return [self.sample(rng) for _ in range(count)]


@dataclass(frozen=True)
class FixedLengthDistribution(LengthDistribution):
    """Every request has the same (LP, LD) lengths."""

    prefill_length: int
    decode_length: int

    def __post_init__(self) -> None:
        if self.prefill_length <= 0 or self.decode_length < 0:
            raise ConfigurationError("fixed lengths must be positive / non-negative")

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"LP={self.prefill_length},LD={self.decode_length}"

    def sample(self, rng: np.random.Generator) -> LengthSample:
        return LengthSample(self.prefill_length, self.decode_length)


@dataclass(frozen=True)
class WikiTextLikeDistribution(LengthDistribution):
    """Heavy-tailed lengths mimicking WikiText-2 article statistics.

    Prompt lengths follow a lognormal with median ~360 tokens and a tail out to
    a few thousand tokens; output lengths follow a lognormal with median ~200
    tokens.  Lengths are clipped to ``[min_length, max_length]``.
    """

    prefill_log_mean: float = 5.9   # median ~ e^5.9 = 365 tokens
    prefill_log_sigma: float = 0.9
    decode_log_mean: float = 5.3    # median ~ e^5.3 = 200 tokens
    decode_log_sigma: float = 0.8
    min_length: int = 16
    max_length: int = 4096
    #: prompt + output may not exceed the serving context window
    max_total_length: int = 4096

    @property
    def name(self) -> str:  # type: ignore[override]
        return "WikiText-2"

    def sample(self, rng: np.random.Generator) -> LengthSample:
        prefill = int(rng.lognormal(self.prefill_log_mean, self.prefill_log_sigma))
        decode = int(rng.lognormal(self.decode_log_mean, self.decode_log_sigma))
        prefill = int(np.clip(prefill, self.min_length, self.max_length))
        decode = int(np.clip(decode, self.min_length, self.max_length))
        if prefill + decode > self.max_total_length:
            prefill = min(prefill, self.max_total_length - self.min_length)
            decode = max(self.min_length, self.max_total_length - prefill)
        return LengthSample(prefill, decode)


@dataclass(frozen=True)
class UniformLengthDistribution(LengthDistribution):
    """Uniform lengths; handy for stress tests and property-based testing."""

    prefill_low: int = 16
    prefill_high: int = 2048
    decode_low: int = 16
    decode_high: int = 2048

    @property
    def name(self) -> str:  # type: ignore[override]
        return "Uniform"

    def sample(self, rng: np.random.Generator) -> LengthSample:
        prefill = int(rng.integers(self.prefill_low, self.prefill_high + 1))
        decode = int(rng.integers(self.decode_low, self.decode_high + 1))
        return LengthSample(prefill, decode)


# The paper's four workload settings.
WIKITEXT2 = WikiTextLikeDistribution()
LP128_LD2048 = FixedLengthDistribution(prefill_length=128, decode_length=2048)
LP2048_LD128 = FixedLengthDistribution(prefill_length=2048, decode_length=128)
LP2048_LD2048 = FixedLengthDistribution(prefill_length=2048, decode_length=2048)

NAMED_DISTRIBUTIONS: dict[str, LengthDistribution] = {
    "wikitext2": WIKITEXT2,
    "lp128_ld2048": LP128_LD2048,
    "lp2048_ld128": LP2048_LD128,
    "lp2048_ld2048": LP2048_LD2048,
}


#: ``lp<prefill>_ld<decode>`` -> FixedLengthDistribution (generalises the
#: paper's three fixed settings to arbitrary lengths, e.g. ``lp384_ld1``)
_FIXED_PATTERN = re.compile(r"^lp(\d+)_ld(\d+)$")
#: ``wikitext2_ldm<float>`` -> WikiText-like lengths with a heavier decode
#: tail (e.g. ``wikitext2_ldm6.5`` for the Fig. 17 KV-pressure sweep)
_WIKITEXT_LDM_PATTERN = re.compile(r"^wikitext2_ldm([0-9]+(?:\.[0-9]+)?)$")


def get_distribution(name: str) -> LengthDistribution:
    """Look up a workload by name.

    Recognises the paper's named settings plus two parametric families:
    ``lp<P>_ld<D>`` (every request has fixed prefill/decode lengths) and
    ``wikitext2_ldm<M>`` (WikiText-like lengths with decode log-mean ``M``),
    which makes every trace the figure drivers use addressable by a string.
    """
    key = name.lower()
    if key in NAMED_DISTRIBUTIONS:
        return NAMED_DISTRIBUTIONS[key]
    match = _FIXED_PATTERN.match(key)
    if match:
        return FixedLengthDistribution(
            prefill_length=int(match.group(1)), decode_length=int(match.group(2))
        )
    match = _WIKITEXT_LDM_PATTERN.match(key)
    if match:
        return WikiTextLikeDistribution(decode_log_mean=float(match.group(1)))
    raise ConfigurationError(
        f"unknown workload '{name}'; known: {sorted(NAMED_DISTRIBUTIONS)} "
        "(or 'lp<P>_ld<D>' / 'wikitext2_ldm<M>')"
    )
