"""Lazy request streams: heap-merged per-tenant arrival generators.

Million-request traces cannot be materialised up front — a 10^6-request trace
holds ~10^6 ``Request`` objects before the first epoch runs.  This module
generates the same traces *lazily*: every tenant is an arrival generator that
draws one length sample (and, open-loop, one exponential gap) per request from
the exact RNG streams the materialising generators use, and a heap merges the
tenant generators on ``(arrival_time, tenant_index, per-tenant order)`` — the
exact sort key of :func:`~repro.workload.generator.generate_multi_tenant_trace`.
Request ids are assigned in pop order, so the merged stream is *bitwise
identical* to the sorted materialised trace, request by request, while holding
only one pending request per tenant in memory.

Because each tenant's arrivals are non-decreasing (a cumulative sum of
non-negative gaps), the heap invariant "one entry per tenant = that tenant's
earliest remaining request" makes the pop order globally sorted; ties at equal
arrival times break on tenant index then per-tenant order, exactly like the
materialised ``rows.sort``.

:class:`StreamingTrace` duck-types the parts of
:class:`~repro.workload.generator.Trace` the pipeline engines consume (``spec``,
``slo_for``, ``mean_prefill_length``, ``__len__``) without a ``requests`` list;
the scheduler pulls from its :class:`RequestStream` on demand (see
``InterSequenceScheduler.attach_stream``).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

import numpy as np

from ..errors import ConfigurationError
from .distributions import LengthDistribution, get_distribution
from .generator import TenantSpec, Trace, WorkloadSpec, make_workload
from .requests import DEFAULT_TENANT, Request, SLOTarget


def _arrival_source(
    distribution: LengthDistribution,
    num_requests: int,
    arrival_rate_per_s: float,
    length_rng: np.random.Generator,
    arrival_rng: np.random.Generator,
) -> Iterator[tuple[float, int, int]]:
    """Yield ``(arrival, prefill, decode)`` lazily, one request at a time.

    Draw order per request — one length sample, then (open-loop) one
    exponential gap — matches the materialising generators exactly, so the
    lazy stream consumes the RNG streams identically.
    """
    arrival = 0.0
    for _ in range(num_requests):
        sample = distribution.sample(length_rng)
        if arrival_rate_per_s > 0:
            arrival += float(arrival_rng.exponential(1.0 / arrival_rate_per_s))
        yield arrival, sample.prefill_length, sample.decode_length


class _TenantSource:
    """One tenant's lazy arrival generator plus its merge bookkeeping."""

    __slots__ = ("name", "weight", "priority", "arrivals", "order")

    def __init__(
        self,
        name: str,
        weight: float,
        priority: int,
        arrivals: Iterator[tuple[float, int, int]],
    ) -> None:
        self.name = name
        self.weight = weight
        self.priority = priority
        self.arrivals = arrivals
        #: per-tenant order of the *next* request (the materialised trace's
        #: third sort-key component)
        self.order = 0


class RequestStream:
    """Arrival-ordered lazy stream of :class:`Request` objects.

    Pops are globally sorted by ``(arrival_time, tenant_index, order)`` and
    request ids are assigned in pop order — bitwise the materialised trace's
    ``sort`` + ``enumerate``.  Memory held is one pending heap entry per
    tenant, independent of the trace length.
    """

    def __init__(self, sources: list[_TenantSource], total: int) -> None:
        self._sources = sources
        #: total number of requests the stream will ever emit
        self.total = total
        self._emitted = 0
        self._prefill_emitted = 0
        self._decode_emitted = 0
        #: one entry per non-exhausted tenant:
        #: ``(arrival, tenant_index, order, prefill, decode)``
        self._heap: list[tuple[float, int, int, int, int]] = []
        for index in range(len(sources)):
            self._advance_source(index)

    def _advance_source(self, index: int) -> None:
        source = self._sources[index]
        try:
            arrival, prefill, decode = next(source.arrivals)
        except StopIteration:
            return
        heapq.heappush(self._heap, (arrival, index, source.order, prefill, decode))
        source.order += 1

    # ------------------------------------------------------------------ state

    @property
    def emitted(self) -> int:
        """Requests popped so far — the resumable stream cursor."""
        return self._emitted

    @property
    def exhausted(self) -> bool:
        return not self._heap

    @property
    def prefill_tokens_emitted(self) -> int:
        return self._prefill_emitted

    @property
    def decode_tokens_emitted(self) -> int:
        return self._decode_emitted

    def peek_arrival(self) -> float | None:
        """Arrival time of the next request (None once exhausted)."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pending_arrivals(self) -> list[tuple[str, float]]:
        """``(tenant, next arrival)`` for every non-exhausted tenant.

        Each heap entry is its tenant's earliest remaining request, so this
        is exactly the per-tenant "next pending arrival" view the scheduler
        needs to answer next-arrival queries as if the whole trace had been
        submitted up front.  Unsorted (heap order); callers take a minimum.
        """
        return [(self._sources[entry[1]].name, entry[0]) for entry in self._heap]

    # ------------------------------------------------------------------- pops

    def pop(self) -> Request:
        """Emit the next request in global arrival order."""
        if not self._heap:
            raise ConfigurationError("request stream is exhausted")
        arrival, index, _, prefill, decode = heapq.heappop(self._heap)
        source = self._sources[index]
        request = Request(
            request_id=self._emitted,
            prefill_length=prefill,
            decode_length=decode,
            arrival_time=arrival,
            tenant=source.name,
            weight=source.weight,
            priority=source.priority,
        )
        self._emitted += 1
        self._prefill_emitted += prefill
        self._decode_emitted += decode
        self._advance_source(index)
        return request

    def __iter__(self) -> Iterator[Request]:
        while self._heap:
            yield self.pop()


class StreamingTrace:
    """A trace whose requests are generated on demand.

    Duck-types the :class:`~repro.workload.generator.Trace` surface the
    pipeline engines read (``spec``, ``slo``, ``tenant_slos``, ``slo_for``,
    ``mean_prefill_length``, ``__len__``) — but has no ``requests`` list; the
    scheduler pulls from :attr:`stream` as simulated time advances.

    ``mean_prefill_length`` is accumulated over *emitted* requests with the
    same integer sum / ``max(1, n)`` division as ``Trace``, so once the stream
    has drained (which is when the engines read it) the value is bitwise equal
    to the materialised trace's.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        stream: RequestStream,
        slo: SLOTarget | None = None,
        tenant_slos: dict[str, SLOTarget] | None = None,
        tenant_quotas: dict[str, float] | None = None,
    ) -> None:
        self.spec = spec
        self.stream = stream
        self.slo = slo
        self.tenant_slos: dict[str, SLOTarget] = dict(tenant_slos or {})
        self.tenant_quotas: dict[str, float] = dict(tenant_quotas or {})

    def slo_for(self, tenant: str) -> SLOTarget | None:
        """The SLO a tenant's requests are judged by (override, else global)."""
        return self.tenant_slos.get(tenant, self.slo)

    def __len__(self) -> int:
        return self.stream.total

    def __iter__(self) -> Iterator[Request]:
        """Drain the remaining requests lazily, in arrival order."""
        return iter(self.stream)

    @property
    def mean_prefill_length(self) -> float:
        return self.stream.prefill_tokens_emitted / max(1, self.stream.emitted)

    @property
    def mean_decode_length(self) -> float:
        return self.stream.decode_tokens_emitted / max(1, self.stream.emitted)

    def materialize(self) -> Trace:
        """Drain the stream into a plain :class:`Trace` (small-N shim)."""
        requests = list(self.stream)
        return Trace(
            spec=self.spec,
            requests=requests,
            slo=self.slo,
            tenant_slos=dict(self.tenant_slos),
            tenant_quotas=dict(self.tenant_quotas),
        )


def multi_tenant_stream(
    tenants: tuple[TenantSpec, ...] | list[TenantSpec],
    seed: int = 0,
    slo: SLOTarget | None = None,
) -> StreamingTrace:
    """Lazy equivalent of :func:`~repro.workload.generator.generate_multi_tenant_trace`.

    Every tenant samples lengths and arrival gaps from RNG streams derived
    from ``(seed, tenant index)`` — identical to the materialising generator —
    and the merge emits requests in ``(arrival, tenant index, order)`` order
    with ids assigned in emission order.  ``materialize()`` on the result is
    bitwise equal to the materialised trace.
    """
    if not tenants:
        raise ConfigurationError("at least one tenant is required")
    names = [tenant.name for tenant in tenants]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"tenant names must be unique, got {names}")
    sources: list[_TenantSource] = []
    for index, tenant in enumerate(tenants):
        distribution = get_distribution(tenant.workload)
        # Independent streams per tenant, lengths decoupled from arrivals:
        # changing a tenant's offered load must not change its request mix.
        length_rng = np.random.default_rng((seed, index))
        arrival_rng = np.random.default_rng((seed, index, 1))
        sources.append(
            _TenantSource(
                name=tenant.name,
                weight=tenant.weight,
                priority=tenant.priority,
                arrivals=_arrival_source(
                    distribution,
                    tenant.num_requests,
                    tenant.arrival_rate_per_s,
                    length_rng,
                    arrival_rng,
                ),
            )
        )
    total = sum(tenant.num_requests for tenant in tenants)
    spec = WorkloadSpec(
        name="+".join(names),
        distribution=get_distribution(tenants[0].workload),
        num_requests=total,
        seed=seed,
    )
    tenant_slos = {
        tenant.name: tenant.slo for tenant in tenants if tenant.slo is not None
    }
    tenant_quotas = {
        tenant.name: tenant.kv_quota
        for tenant in tenants
        if tenant.kv_quota is not None
    }
    return StreamingTrace(
        spec=spec,
        stream=RequestStream(sources, total),
        slo=slo,
        tenant_slos=tenant_slos,
        tenant_quotas=tenant_quotas,
    )


def stream_from_spec(spec: WorkloadSpec) -> StreamingTrace:
    """Lazy single-tenant stream with :class:`TraceGenerator` RNG semantics.

    Uses ``default_rng(seed)`` / ``default_rng((seed, 1))`` — the single-tenant
    generator's streams, not the multi-tenant ``(seed, index)`` derivation —
    so ``materialize()`` is bitwise equal to ``TraceGenerator(spec).generate()``
    (requests carry the default tenant, weight and priority).
    """
    length_rng = np.random.default_rng(spec.seed)
    arrival_rng = np.random.default_rng((spec.seed, 1))
    source = _TenantSource(
        name=DEFAULT_TENANT,
        weight=1.0,
        priority=0,
        arrivals=_arrival_source(
            spec.distribution,
            spec.num_requests,
            spec.arrival_rate_per_s,
            length_rng,
            arrival_rng,
        ),
    )
    return StreamingTrace(
        spec=spec, stream=RequestStream([source], spec.num_requests)
    )


def workload_stream(
    name: str,
    num_requests: int = 1000,
    seed: int = 0,
    arrival_rate_per_s: float = 0.0,
) -> StreamingTrace:
    """Convenience wrapper: build a workload spec and stream its trace."""
    return stream_from_spec(
        make_workload(name, num_requests, seed, arrival_rate_per_s)
    )
