"""Request and sequence abstractions for the inference workload.

A *request* arrives with a prompt of ``prefill_length`` tokens and asks for
``decode_length`` output tokens.  Once admitted by the scheduler it becomes a
*sequence* whose KV cache grows by one entry per processed token.  The paper's
evaluation processes batches of 1000 requests per workload setting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError, SchedulingError


#: tenant id of requests that do not belong to an explicit multi-tenant trace
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class SLOTarget:
    """Per-request service-level objective used for goodput accounting.

    A request *meets* the SLO when every specified deadline holds for it:
    ``ttft_s`` bounds arrival-to-first-output-token, ``latency_s`` bounds
    arrival-to-completion.  A deadline left at ``None`` is not enforced, and a
    metric a request never produces (TTFT of a prefill-only request) passes
    vacuously.  *Goodput* is the fraction of completed requests meeting the
    SLO; an operating point *attains* the SLO when goodput reaches
    ``goodput_target`` (the "p99" in a TTFT-p99 SLO: 0.99 means at most 1 % of
    requests may miss their deadline).
    """

    ttft_s: float | None = None
    latency_s: float | None = None
    goodput_target: float = 0.99

    def __post_init__(self) -> None:
        # SLOs are deployment configuration, so invalid targets surface as
        # the spec layer's typed ConfigurationError, not a scheduling fault.
        if self.ttft_s is not None and self.ttft_s <= 0:
            raise ConfigurationError("SLO ttft_s must be positive")
        if self.latency_s is not None and self.latency_s <= 0:
            raise ConfigurationError("SLO latency_s must be positive")
        if not 0.0 < self.goodput_target <= 1.0:
            raise ConfigurationError("SLO goodput_target must lie in (0, 1]")

    def met_by(self, ttft_s: float | None, latency_s: float | None) -> bool:
        """Whether one request's observed latencies meet every deadline."""
        if self.ttft_s is not None and ttft_s is not None and ttft_s > self.ttft_s:
            return False
        if (
            self.latency_s is not None
            and latency_s is not None
            and latency_s > self.latency_s
        ):
            return False
        return True


@dataclass(frozen=True)
class Request:
    """An inference request: a prompt plus a target number of output tokens."""

    request_id: int
    prefill_length: int
    decode_length: int
    arrival_time: float = 0.0
    #: tenant the request belongs to (drives per-tenant serving stats)
    tenant: str = DEFAULT_TENANT
    #: WFQ share of the owning tenant (admission virtual time advances by
    #: ``total_tokens / weight`` per admitted request; ignored by fcfs)
    weight: float = 1.0
    #: static admission priority of the owning tenant (higher = admitted
    #: first under the ``priority`` policy; ignored by fcfs / wfq)
    priority: int = 0

    def __post_init__(self) -> None:
        if self.prefill_length <= 0:
            raise SchedulingError("prefill_length must be positive")
        if self.decode_length < 0:
            raise SchedulingError("decode_length must be non-negative")
        if not self.tenant:
            raise SchedulingError("tenant must be a non-empty string")
        if self.weight <= 0:
            raise SchedulingError("weight must be positive")

    @property
    def total_tokens(self) -> int:
        """Tokens that flow through the pipeline for this request."""
        return self.prefill_length + self.decode_length

    @property
    def final_context_length(self) -> int:
        """KV entries held once the request completes."""
        return self.prefill_length + self.decode_length


class SequencePhase(enum.Enum):
    """Lifecycle of a sequence inside the serving system."""

    WAITING = "waiting"
    PREFILL = "prefill"
    DECODE = "decode"
    EVICTED = "evicted"
    COMPLETE = "complete"


@dataclass
class Sequence:
    """Mutable serving state of one admitted request."""

    request: Request
    phase: SequencePhase = SequencePhase.WAITING
    #: prompt tokens whose KV entries have been produced so far
    prefill_progress: int = 0
    #: output tokens generated so far
    decode_progress: int = 0
    #: number of times this sequence was evicted and had to be recomputed
    eviction_count: int = 0
    #: evictions that were *preemptions*: a scheduling policy displaced this
    #: resident sequence to admit a higher-ranked one (subset of
    #: ``eviction_count``; capacity and fault evictions do not count here)
    preemptions: int = 0
    #: tokens recomputed due to evictions (pure waste)
    recomputed_tokens: int = 0
    #: extra prompt tokens to re-prefill after evictions (previously generated
    #: tokens whose KV entries were discarded)
    extra_prefill: int = 0
    #: decode tokens generated before the most recent eviction (they do not
    #: need to be generated again, only their KV re-built via prefill)
    decode_offset: int = 0
    admission_time: float = 0.0
    #: wall-clock instant the first output token left the pipeline (stamped at
    #: the end of the epoch that produced it; survives later evictions because
    #: generated tokens are never produced twice)
    first_token_time: float | None = None
    completion_time: float | None = None
    #: earliest instant a shed-with-retry request may be admitted again
    #: (0.0 = immediately; the overload shedder pushes this out with backoff)
    retry_at: float = 0.0
    #: times this request was shed from the admission queue and retried
    retries: int = 0
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def sequence_id(self) -> int:
        return self.request.request_id

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def eligible_time(self) -> float:
        """Instant this sequence may be admitted: arrival, or a retry backoff."""
        return max(self.request.arrival_time, self.retry_at)

    @property
    def context_length(self) -> int:
        """KV entries currently cached for this sequence."""
        return self.prefill_progress + self.decode_progress

    @property
    def total_prefill_target(self) -> int:
        """Prompt tokens to prefill, including post-eviction recomputation."""
        return self.request.prefill_length + self.extra_prefill

    @property
    def remaining_prefill(self) -> int:
        return self.total_prefill_target - self.prefill_progress

    @property
    def remaining_decode(self) -> int:
        return self.request.decode_length - self.decode_offset - self.decode_progress

    @property
    def generated_tokens(self) -> int:
        """Unique output tokens produced so far (survives evictions)."""
        return self.decode_offset + self.decode_progress

    @property
    def remaining_tokens(self) -> int:
        return self.remaining_prefill + self.remaining_decode

    @property
    def is_complete(self) -> bool:
        return self.phase is SequencePhase.COMPLETE

    @property
    def ttft_s(self) -> float | None:
        """Arrival-to-first-output-token latency (None before the first token,
        and for prefill-only requests, which never produce output tokens)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.request.arrival_time

    @property
    def latency_s(self) -> float | None:
        """Arrival-to-completion latency (None until the sequence completes)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.request.arrival_time

    def start(self, time: float = 0.0) -> None:
        """Move the sequence from WAITING/EVICTED into the prefill phase."""
        if self.phase not in (SequencePhase.WAITING, SequencePhase.EVICTED):
            raise SchedulingError(
                f"sequence {self.sequence_id} cannot start from phase {self.phase}"
            )
        self.phase = SequencePhase.PREFILL
        self.admission_time = time

    def advance_token(self) -> int:
        """Process one token; return the context length it attends to.

        The returned length is the number of previously cached tokens, i.e.
        the position of the processed token (0-based), which drives the
        position-dependent score/context GEMV cost.
        """
        if self.phase is SequencePhase.PREFILL:
            position = self.context_length
            self.prefill_progress += 1
            if self.remaining_prefill <= 0:
                self.phase = (
                    SequencePhase.DECODE
                    if self.remaining_decode > 0
                    else SequencePhase.COMPLETE
                )
            return position
        if self.phase is SequencePhase.DECODE:
            position = self.context_length
            self.decode_progress += 1
            if self.remaining_decode <= 0:
                self.phase = SequencePhase.COMPLETE
            return position
        raise SchedulingError(
            f"sequence {self.sequence_id} cannot advance from phase {self.phase}"
        )

    def advance_tokens(self, count: int) -> list[tuple["SequencePhase", int, int]]:
        """Process up to ``count`` tokens in bulk.

        Returns a list of ``(phase, tokens, start_position)`` segments, one per
        phase the advance passed through (a chunk can finish the prefill phase
        and continue into decode).  ``start_position`` is the context length at
        which the segment's first token was processed.
        """
        segments: list[tuple[SequencePhase, int, int]] = []
        remaining = count
        while remaining > 0 and self.phase in (SequencePhase.PREFILL, SequencePhase.DECODE):
            phase = self.phase
            start_position = self.context_length
            if phase is SequencePhase.PREFILL:
                step = min(remaining, self.remaining_prefill)
                self.prefill_progress += step
                if self.remaining_prefill <= 0:
                    self.phase = (
                        SequencePhase.DECODE
                        if self.remaining_decode > 0
                        else SequencePhase.COMPLETE
                    )
            else:
                step = min(remaining, self.remaining_decode)
                self.decode_progress += step
                if self.remaining_decode <= 0:
                    self.phase = SequencePhase.COMPLETE
            if step <= 0:
                break
            segments.append((phase, step, start_position))
            remaining -= step
        return segments

    def apply_advance(self, prefill_tokens: int, decode_tokens: int) -> None:
        """Apply a bulk advance whose phase split was computed externally.

        The array-based epoch engine derives ``prefill_tokens`` /
        ``decode_tokens`` for every active sequence with vectorised min/max
        operations (``prefill = min(budget, remaining_prefill)``; ``decode =
        min(budget - prefill, remaining_decode)``) and commits them here.  The
        phase transitions are identical to :meth:`advance_tokens` walking the
        same counts.
        """
        if self.phase not in (SequencePhase.PREFILL, SequencePhase.DECODE):
            raise SchedulingError(
                f"sequence {self.sequence_id} cannot advance from phase {self.phase}"
            )
        if prefill_tokens > 0:
            self.prefill_progress += prefill_tokens
            if self.remaining_prefill <= 0:
                self.phase = (
                    SequencePhase.DECODE
                    if self.remaining_decode > 0
                    else SequencePhase.COMPLETE
                )
        if decode_tokens > 0:
            self.decode_progress += decode_tokens
            if self.remaining_decode <= 0:
                self.phase = SequencePhase.COMPLETE

    def evict(self) -> int:
        """Evict the sequence; its cached prefix must be recomputed on re-entry.

        The discarded context (original prompt plus every token generated so
        far) must be re-prefilled when the sequence is re-admitted; already
        generated output tokens are not generated again.  Returns the number
        of tokens whose KV entries were discarded.
        """
        if self.phase in (SequencePhase.COMPLETE, SequencePhase.WAITING):
            raise SchedulingError(
                f"sequence {self.sequence_id} cannot be evicted from {self.phase}"
            )
        discarded = self.context_length
        self.eviction_count += 1
        self.recomputed_tokens += discarded
        self.decode_offset += self.decode_progress
        self.extra_prefill = self.decode_offset
        self.prefill_progress = 0
        self.decode_progress = 0
        self.phase = SequencePhase.EVICTED
        return discarded

    def complete(self, time: float) -> None:
        self.phase = SequencePhase.COMPLETE
        self.completion_time = time
