"""Pluggable admission-order policies for the inter-sequence scheduler.

PR 4 made head-of-line blocking *measurable* (per-tenant ``TenantStats``);
this module makes it *fixable*: the admission order of
:class:`~repro.workload.scheduler.InterSequenceScheduler` is delegated to a
:class:`SchedulingPolicy`, of which three implementations exist:

``fcfs``
    The paper's First-Come-First-Serve queue, bit-for-bit the historical
    behaviour: the queue head gates everything behind it, whether it is
    blocked on capacity or (open-loop serving) has not arrived yet.

``wfq``
    Weighted fair queueing over tenants (start-time fair queueing at the
    admission granularity).  Each tenant keeps a FIFO queue; an admitted
    request advances its tenant's virtual finish tag by
    ``total_tokens / weight`` (weights ride on
    :class:`~repro.workload.generator.TenantSpec` and thread onto every
    :class:`~repro.workload.requests.Request`), and the arrived tenant head
    with the smallest virtual start tag is admitted next.  The policy is
    work-conserving: whenever *any* waiting request has arrived, one is
    eligible — a long batch request that has not arrived, does not fit the
    cache, or belongs to a tenant that recently consumed its share can no
    longer head-of-line-block an interactive tenant.

``priority``
    Strict per-tenant priority admission with starvation-free aging: the
    arrived tenant head with the highest *effective* priority — its static
    ``priority`` plus ``aging_rate`` priority units per second of waiting —
    is admitted next.  A request outranked by ``d`` priority levels overtakes
    the higher class after at most ``d / aging_rate`` seconds in the queue,
    which bounds starvation; ``aging_rate=0`` degenerates to (starvable)
    strict priority.

Every policy preserves FIFO order *within* a tenant, so per-tenant latency
stays monotone in arrival order and an evicted victim re-enters at the front
of its own tenant's queue.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator, Mapping
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (requests is light,
    from .requests import Sequence  # but keep the runtime surface minimal)


@runtime_checkable
class SchedulingPolicy(Protocol):
    """Admission-order policy driven by the inter-sequence scheduler.

    The scheduler owns capacity, eviction and bookkeeping; the policy owns
    *order*: which waiting sequence is the next admission candidate at a
    given wall-clock instant.
    """

    #: registry key of the policy (``fcfs`` / ``wfq`` / ``priority``)
    name: str

    def push(self, sequence: "Sequence") -> None:
        """Enqueue a newly submitted sequence."""
        ...

    def push_front(self, sequence: "Sequence") -> None:
        """Re-queue an evicted sequence at the front of its (tenant) queue."""
        ...

    def select(
        self, time: float, exclude: frozenset[int] = frozenset()
    ) -> "Sequence | None":
        """The admission candidate at ``time`` (None: nothing has arrived).

        Selecting must be side-effect-free: the scheduler may select the same
        candidate across many epochs while it is blocked on capacity.
        ``exclude`` holds sequence ids already rejected on capacity this
        admission round: FCFS returns None when its head is excluded (the
        head gates everything, the historical behaviour), while the
        tenant-aware policies skip excluded heads and propose another
        tenant's — a capacity-blocked 4k-token batch request must not block
        an interactive request that would fit.
        """
        ...

    def pop(self, sequence: "Sequence", time: float) -> None:
        """Commit the admission of a previously selected candidate."""
        ...

    def select_victim(
        self, candidate: "Sequence", active: list["Sequence"]
    ) -> "Sequence | None":
        """A resident sequence worth displacing so ``candidate`` can enter.

        Preemptive scheduling only: when the scheduler cannot admit the
        selected candidate (concurrency cap or KV capacity), it asks the
        policy for a victim among the *active* sequences.  A policy may only
        nominate a sequence it ranks *strictly below* the candidate — under
        ``priority`` a strictly lower static priority, under ``wfq`` a
        strictly lower tenant weight — so two preemptions can never
        ping-pong.  ``None`` declines (FCFS always declines: admission order
        is arrival order and a resident sequence always arrived earlier).
        Selection must be side-effect-free; the scheduler performs the
        eviction and re-queues the victim tenant/priority-preserved.
        """
        ...

    def next_arrival_time(self) -> float | None:
        """Earliest instant admission can next make progress (None: empty)."""
        ...

    def next_future_arrival(self, time: float) -> float | None:
        """Earliest candidate arrival strictly after ``time`` (None: no such).

        Drives the engines' sub-epoch split boundary: FCFS only ever splits
        at its head's arrival, while the tenant-aware policies split at the
        earliest future tenant-head arrival even when another head has
        already arrived and is blocked on capacity (the newcomer may fit).
        """
        ...

    def pending_head_arrivals(self, pending: list[tuple[str, float]]) -> list[float]:
        """Which not-yet-pulled stream arrivals can affect admission order.

        ``pending`` holds one ``(tenant, next arrival)`` pair per tenant still
        producing in an attached lazy request stream.  The policy answers with
        the arrivals that would have been *next-arrival candidates* had the
        whole trace been submitted up front: FCFS yields none while its queue
        is non-empty (the head gates everything — a pending later submission
        can never be the candidate), and everything once it is empty; the
        tenant-aware policies yield the arrivals of tenants whose own queue is
        currently empty (a tenant with a queued head hides its later
        arrivals, but never another tenant's).  Keeps the scheduler's
        ``next_arrival_time``/``next_future_arrival`` answers — and with them
        the engines' epoch-split boundaries — bit-for-bit equal to the
        materialised submit-everything path.
        """
        ...

    def waiting(self) -> list["Sequence"]:
        """Snapshot of the waiting sequences (policy-specific order)."""
        ...

    def remove(self, sequence: "Sequence") -> bool:
        """Drop a waiting sequence (overload shed); True when it was queued."""
        ...

    def snapshot_state(self) -> dict[str, Any]:
        """JSON-able queue/virtual-time state for checkpointing."""
        ...

    def restore_state(
        self, state: dict[str, Any], by_id: Mapping[int, "Sequence"]
    ) -> None:
        """Rebuild queues from :meth:`snapshot_state` output.

        ``by_id`` maps request ids to the (freshly rebuilt) sequence objects
        of the run being resumed.
        """
        ...

    def __len__(self) -> int: ...


class FCFSPolicy:
    """First-Come-First-Serve: one global queue, the head gates everything.

    Bit-for-bit the pre-policy scheduler behaviour, including the subtlety
    that a later-submitted request arriving *earlier* than the head still
    waits behind it (``next_arrival_time`` is the head's arrival, not the
    minimum over the queue).
    """

    name = "fcfs"

    def __init__(self) -> None:
        self._queue: deque[Sequence] = deque()

    def push(self, sequence: "Sequence") -> None:
        self._queue.append(sequence)

    def push_front(self, sequence: "Sequence") -> None:
        self._queue.appendleft(sequence)

    def select(
        self, time: float, exclude: frozenset[int] = frozenset()
    ) -> "Sequence | None":
        if not self._queue:
            return None
        head = self._queue[0]
        if head.eligible_time > time:
            return None
        if head.sequence_id in exclude:
            # The FCFS head gates everything behind it, even on capacity.
            return None
        return head

    def pop(self, sequence: "Sequence", time: float) -> None:
        if not self._queue or self._queue[0] is not sequence:
            raise ConfigurationError(
                "FCFS pop must remove the selected queue head"
            )
        self._queue.popleft()

    def select_victim(
        self, candidate: "Sequence", active: list["Sequence"]
    ) -> "Sequence | None":
        # FCFS never preempts: every resident sequence arrived before the
        # candidate, so displacing one would invert arrival order.
        return None

    def next_arrival_time(self) -> float | None:
        if not self._queue:
            return None
        return self._queue[0].eligible_time

    def next_future_arrival(self, time: float) -> float | None:
        arrival = self.next_arrival_time()
        if arrival is None or arrival <= time:
            return None
        return arrival

    def pending_head_arrivals(self, pending: list[tuple[str, float]]) -> list[float]:
        # A non-empty FCFS queue gates everything behind it: requests still
        # inside the stream were submitted later than every queued sequence,
        # so none of them can be the next candidate.  Once the queue drains,
        # the earliest pending submission is exactly the next head.
        if self._queue:
            return []
        return [arrival for _, arrival in pending]

    def waiting(self) -> list["Sequence"]:
        return list(self._queue)

    def remove(self, sequence: "Sequence") -> bool:
        # Identity scan: Sequence is a plain dataclass whose generated
        # equality compares fields, which is the wrong notion here.
        for index, queued in enumerate(self._queue):
            if queued is sequence:
                del self._queue[index]
                return True
        return False

    def snapshot_state(self) -> dict[str, Any]:
        return {"queue": [seq.sequence_id for seq in self._queue]}

    def restore_state(
        self, state: dict[str, Any], by_id: Mapping[int, "Sequence"]
    ) -> None:
        self._queue = deque(by_id[seq_id] for seq_id in state["queue"])

    def __len__(self) -> int:
        return len(self._queue)


class _TenantQueuedPolicy:
    """Shared structure of the tenant-aware policies: FIFO per tenant.

    Selection only ever considers tenant queue *heads*: within a tenant all
    requests share the policy inputs (weight / static priority) and FIFO
    order dominates every tie-break, so the head is always preferred over
    anything behind it — scanning heads is globally optimal and O(#tenants).
    """

    def __init__(self) -> None:
        #: per-tenant FIFO queues, in first-seen tenant order (deterministic)
        self._queues: dict[str, deque[Sequence]] = {}
        self._size = 0

    def _queue_for(self, tenant: str) -> "deque[Sequence]":
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        return queue

    def push(self, sequence: "Sequence") -> None:
        self._queue_for(sequence.request.tenant).append(sequence)
        self._size += 1

    def push_front(self, sequence: "Sequence") -> None:
        self._queue_for(sequence.request.tenant).appendleft(sequence)
        self._size += 1

    def pop(self, sequence: "Sequence", time: float) -> None:
        queue = self._queues.get(sequence.request.tenant)
        if not queue or queue[0] is not sequence:
            raise ConfigurationError(
                "policy pop must remove the selected tenant-queue head"
            )
        queue.popleft()
        self._size -= 1

    def _heads(self) -> Iterator[tuple[str, "Sequence"]]:
        for tenant, queue in self._queues.items():
            if queue:
                yield tenant, queue[0]

    def _select_best(
        self,
        time: float,
        exclude: frozenset[int],
        key: Callable[[str, "Sequence"], Any],
    ) -> "Sequence | None":
        """Arrived, non-excluded tenant head minimising ``key(tenant, head)``.

        The shared scan behind both tenant-aware ``select`` implementations;
        only the sort key differs between wfq and priority.
        """
        best: Sequence | None = None
        best_key: Any = None
        for tenant, head in self._heads():
            if head.eligible_time > time:
                continue
            if head.sequence_id in exclude:
                continue  # capacity-blocked head: offer another tenant's
            head_key = key(tenant, head)
            if best_key is None or head_key < best_key:
                best, best_key = head, head_key
        return best

    def select_victim(
        self, candidate: "Sequence", active: list["Sequence"]
    ) -> "Sequence | None":
        # Tenant-aware default: decline (wfq/priority override with their
        # own strict-rank comparisons).
        return None

    def _lowest_ranked(
        self,
        active: list["Sequence"],
        rank: Callable[["Sequence"], float],
        threshold: float,
    ) -> "Sequence | None":
        """Active sequence with the strictly lowest rank below ``threshold``.

        Ties prefer the most recently admitted victim (largest admission
        time, then largest id): it has sunk the least service, so its
        eviction wastes the fewest recompute tokens.  Deterministic — both
        engine paths scan the same active list in the same order.
        """
        best: Sequence | None = None
        best_key: tuple[float, float, int] | None = None
        for sequence in active:
            value = rank(sequence)
            if value >= threshold:
                continue
            key = (value, -sequence.admission_time, -sequence.sequence_id)
            if best_key is None or key < best_key:
                best, best_key = sequence, key
        return best

    def next_arrival_time(self) -> float | None:
        """Minimum arrival over the tenant heads (any arrived head is
        eligible, unlike FCFS where only the global head can unblock)."""
        arrivals = [head.eligible_time for _, head in self._heads()]
        if not arrivals:
            return None
        return min(arrivals)

    def next_future_arrival(self, time: float) -> float | None:
        """Earliest tenant-head arrival strictly after ``time``.

        Unlike FCFS, an already-arrived (possibly capacity-blocked) head
        does not hide a later head: the engines still split epochs at the
        newcomer's arrival, because the policy may admit it immediately.
        """
        arrivals = [
            head.eligible_time
            for _, head in self._heads()
            if head.eligible_time > time
        ]
        if not arrivals:
            return None
        return min(arrivals)

    def pending_head_arrivals(self, pending: list[tuple[str, float]]) -> list[float]:
        # Per-tenant FIFO: a tenant's queued head hides its own later stream
        # arrivals (they sit behind it), but a tenant whose queue is empty
        # would — under full submission — contribute its next request as a
        # tenant head, so its pending arrival is a genuine candidate.
        return [
            arrival
            for tenant, arrival in pending
            if not self._queues.get(tenant)
        ]

    def waiting(self) -> list["Sequence"]:
        flat: list[Sequence] = []
        for queue in self._queues.values():
            flat.extend(queue)
        return flat

    def remove(self, sequence: "Sequence") -> bool:
        queue = self._queues.get(sequence.request.tenant)
        if not queue:
            return False
        for index, queued in enumerate(queue):
            if queued is sequence:
                del queue[index]
                self._size -= 1
                return True
        return False

    def snapshot_state(self) -> dict[str, Any]:
        # Empty queues are kept: the dict's first-seen tenant order is part
        # of the deterministic selection order and must survive a resume.
        return {
            "queues": [
                [tenant, [seq.sequence_id for seq in queue]]
                for tenant, queue in self._queues.items()
            ]
        }

    def restore_state(
        self, state: dict[str, Any], by_id: Mapping[int, "Sequence"]
    ) -> None:
        self._queues = {
            tenant: deque(by_id[seq_id] for seq_id in ids)
            for tenant, ids in state["queues"]
        }
        self._size = sum(len(queue) for queue in self._queues.values())

    def __len__(self) -> int:
        return self._size


class WFQPolicy(_TenantQueuedPolicy):
    """Weighted fair queueing over tenants (start-time fair queueing).

    Each tenant ``t`` carries a virtual finish tag ``F_t``.  Admitting a
    request of cost ``c = request.total_tokens`` and weight ``w`` sets

        S = max(V, F_t);  F_t = S + c / w;  V = S

    where ``V`` is the global virtual time (the start tag of the last
    admitted request).  ``select`` returns the *arrived* tenant head with the
    smallest start tag ``max(V, F_t)``; ties break deterministically on
    (arrival time, request id).  Tenants that recently admitted expensive
    requests therefore wait for the others' virtual time to catch up —
    service (token) fairness, not request-count fairness.

    An evicted-and-re-admitted request is charged again on re-admission.
    That is deliberate: the re-admission really does consume the wafer a
    second time (the entire discarded context is re-prefilled), so the
    tenant's share accounts for the recompute work its eviction caused.
    """

    name = "wfq"

    def __init__(self) -> None:
        super().__init__()
        self._finish: dict[str, float] = {}
        self._vtime = 0.0

    def _start_tag(self, tenant: str) -> float:
        return max(self._vtime, self._finish.get(tenant, 0.0))

    def select(
        self, time: float, exclude: frozenset[int] = frozenset()
    ) -> "Sequence | None":
        return self._select_best(
            time,
            exclude,
            lambda tenant, head: (
                self._start_tag(tenant),
                head.request.arrival_time,
                head.request.request_id,
            ),
        )

    def pop(self, sequence: "Sequence", time: float) -> None:
        tenant = sequence.request.tenant
        start = self._start_tag(tenant)
        weight = max(sequence.request.weight, 1e-9)
        self._finish[tenant] = start + sequence.request.total_tokens / weight
        self._vtime = start
        super().pop(sequence, time)

    def select_victim(
        self, candidate: "Sequence", active: list["Sequence"]
    ) -> "Sequence | None":
        """Displace the lightest-weight resident strictly below the candidate.

        Weight is wfq's notion of rank (a tenant's service share), so a
        heavier tenant's arrival may reclaim blocks from the lightest
        resident tenant; equal weights never preempt, which keeps the
        preemption relation a strict order.
        """
        return self._lowest_ranked(
            active,
            lambda sequence: sequence.request.weight,
            candidate.request.weight,
        )

    def snapshot_state(self) -> dict[str, Any]:
        state = super().snapshot_state()
        state["finish"] = [[tenant, tag] for tenant, tag in self._finish.items()]
        state["vtime"] = self._vtime
        return state

    def restore_state(
        self, state: dict[str, Any], by_id: Mapping[int, "Sequence"]
    ) -> None:
        super().restore_state(state, by_id)
        self._finish = {tenant: tag for tenant, tag in state["finish"]}
        self._vtime = state["vtime"]


class PriorityAgingPolicy(_TenantQueuedPolicy):
    """Strict priority admission with starvation-free aging.

    The arrived tenant head with the highest effective priority

        effective = request.priority + aging_rate * (time - arrival_time)

    is admitted next (ties break on arrival time, then request id).  With
    ``aging_rate > 0`` a request outranked by ``d`` priority levels waits at
    most ``d / aging_rate`` seconds longer than the higher class, which
    bounds starvation; ``aging_rate = 0`` is pure strict priority.
    """

    name = "priority"

    def __init__(self, aging_rate: float = 1.0) -> None:
        super().__init__()
        if aging_rate < 0:
            raise ConfigurationError("priority aging_rate cannot be negative")
        self.aging_rate = aging_rate

    def select(
        self, time: float, exclude: frozenset[int] = frozenset()
    ) -> "Sequence | None":
        def key(tenant: str, head: "Sequence") -> tuple[float, float, int]:
            arrival = head.request.arrival_time
            effective = head.request.priority + self.aging_rate * (time - arrival)
            return (-effective, arrival, head.request.request_id)

        return self._select_best(time, exclude, key)

    def select_victim(
        self, candidate: "Sequence", active: list["Sequence"]
    ) -> "Sequence | None":
        """Displace the lowest-static-priority resident below the candidate.

        Static priorities only: aging rewards *waiting*, and a resident
        sequence is being served, not waiting — so a low-priority sequence
        can never age itself into preemption immunity.
        """
        return self._lowest_ranked(
            active,
            lambda sequence: float(sequence.request.priority),
            float(candidate.request.priority),
        )


#: registry key -> factory; the single source of valid policy names
POLICY_REGISTRY: dict[str, Callable[[], SchedulingPolicy]] = {
    "fcfs": FCFSPolicy,
    "wfq": WFQPolicy,
    "priority": PriorityAgingPolicy,
}

POLICY_NAMES = tuple(sorted(POLICY_REGISTRY))


def validate_policy_name(name: str) -> str:
    """Normalise and validate a policy key (typed error on unknown names)."""
    key = name.lower()
    if key not in POLICY_REGISTRY:
        raise ConfigurationError(
            f"unknown scheduling policy '{name}'; known policies: "
            f"{sorted(POLICY_REGISTRY)}"
        )
    return key


def make_policy(name: str, *, aging_rate: float = 1.0) -> SchedulingPolicy:
    """Instantiate a scheduling policy by registry key.

    ``aging_rate`` parameterises the ``priority`` policy (priority units
    gained per second of waiting) and is ignored by the others.
    """
    key = validate_policy_name(name)
    if key == "priority":
        return PriorityAgingPolicy(aging_rate=aging_rate)
    return POLICY_REGISTRY[key]()
