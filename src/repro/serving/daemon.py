"""The live serving daemon behind ``repro serve --daemon``.

An asyncio loop owns a built deployment and accepts the newline-delimited
JSON protocol (:mod:`repro.serving.protocol`) on a local TCP socket.  The
engine runs the ordinary epoch loop in a worker thread, fed through a
:class:`~repro.serving.feed.LiveArrivalFeed`; the daemon ingests arrivals as
they land and the engine advances in epoch steps interleaved with ingestion,
never simulating past what connected clients have promised.  Draining a
replayed spec trace therefore returns the batch ``serve(spec)`` result bit
for bit — the daemon is an ingestion frontend over the same engine, not a
fork of it.

``checkpoint_signals`` (the CLI's ``--checkpoint-on SIGTERM``) wires
PR 6's :class:`~repro.pipeline.checkpoint.EngineCheckpoint` into graceful
restarts: on the signal the engine captures at its next epoch boundary and
stops, and the daemon writes a checkpoint file that embeds the engine
snapshot plus the ingestion state (accepted requests, watermark), from which
``repro serve --daemon --resume`` continues bit for bit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from pathlib import Path
from typing import Any, Callable, Mapping

from .. import api
from ..errors import ConfigurationError, ProtocolError
from ..pipeline.checkpoint import EngineCheckpoint
from ..results import RunResult
from ..workload.generator import Trace
from ..workload.requests import Request
from .feed import LiveArrivalFeed
from .protocol import (
    CHECKPOINT_FILE_VERSION,
    CHECKPOINT_KIND,
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    request_from_dict,
    request_to_dict,
)
from .telemetry import TelemetryHub


def load_daemon_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read and validate a daemon checkpoint file written by ``checkpoint``."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"cannot read daemon checkpoint '{path}': {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("kind") != CHECKPOINT_KIND:
        raise ConfigurationError(
            f"'{path}' is not a daemon checkpoint file (try --resume on the "
            "file written by the daemon's checkpoint operation)"
        )
    if payload.get("version") != CHECKPOINT_FILE_VERSION:
        raise ConfigurationError(
            f"daemon checkpoint version {payload.get('version')!r} is not "
            f"supported (expected {CHECKPOINT_FILE_VERSION})"
        )
    return payload


class ServingDaemon:
    """One serving daemon: a deployment, an engine thread, a protocol server."""

    def __init__(
        self,
        spec: api.DeploymentSpec,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        scalar: bool = False,
        window_s: float = 60.0,
        checkpoint_path: str = "daemon-checkpoint.json",
        checkpoint_signals: tuple[str, ...] = (),
        resume_payload: Mapping[str, Any] | None = None,
        announce: Callable[[str], None] | None = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.host = host
        self.port = port
        self.scalar = scalar
        self.window_s = window_s
        self.checkpoint_path = checkpoint_path
        self.checkpoint_signals = checkpoint_signals
        self.announce = announce
        #: bound (host, port) once the server is listening
        self.address: tuple[str, int] | None = None
        #: set once the server is listening (fleet threads wait on it)
        self.ready = threading.Event()
        #: set when the daemon loop has fully exited
        self.finished = threading.Event()
        self.result: RunResult | None = None
        self.stop_checkpoint: EngineCheckpoint | None = None
        self.error: BaseException | None = None

        self._resume_checkpoint: EngineCheckpoint | None = None
        self._resume_requests: list[Request] = []
        self._resume_watermark = 0.0
        self._resume_drained = False
        if resume_payload is not None:
            self._load_resume(resume_payload)

        self._loop: asyncio.AbstractEventLoop | None = None
        self._feed: LiveArrivalFeed | None = None
        self._hub: TelemetryHub | None = None
        self._engine_done: asyncio.Event | None = None
        self._events_ready: asyncio.Event | None = None
        self._shutdown: asyncio.Event | None = None
        self._subscribers: list[asyncio.StreamWriter] = []

    # --------------------------------------------------------------- lifecycle

    def run(self) -> None:
        """Run the daemon to completion (blocking; asyncio.run wrapper)."""
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self.error = self.error or exc
            self.ready.set()
            raise
        finally:
            self.finished.set()

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._engine_done = asyncio.Event()
        self._events_ready = asyncio.Event()
        self._shutdown = asyncio.Event()

        system = api.build_deployment(self.spec)
        if not hasattr(system, "serve_live"):
            raise ConfigurationError(
                f"{api.get_system(self.spec.system).display_name} does not "
                "support live serving; use an Ouroboros-family system."
            )
        trace = self._make_live_trace()
        self._hub = TelemetryHub(window_s=self.window_s, slo_for=trace.slo_for)
        self._feed = LiveArrivalFeed(
            watermark=self._resume_watermark,
            known=self._resume_requests,
            pending=[
                request for request in self._resume_requests
                if request.request_id not in {r.request_id
                                              for r in trace.requests}
            ],
            telemetry=self._hub,
            notifier=self._wake_from_engine,
        )
        if self._resume_drained:
            self._feed.drain()

        server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        sockname = server.sockets[0].getsockname()
        self.address = (str(sockname[0]), int(sockname[1]))
        self._install_signal_handlers(loop)

        engine_thread = threading.Thread(
            target=self._engine_main,
            args=(system, trace, self._feed),
            name="repro-engine",
            daemon=True,
        )
        engine_thread.start()
        if self.announce is not None:
            self.announce(
                f"repro daemon listening on {self.address[0]}:{self.address[1]}"
            )
        self.ready.set()

        pump = loop.create_task(self._pump_events())
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            pump.cancel()
            for writer in list(self._subscribers):
                writer.close()

    def _install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        if not self.checkpoint_signals:
            return
        if threading.current_thread() is not threading.main_thread():
            return  # signal handlers only exist on the main thread
        for name in self.checkpoint_signals:
            signum = getattr(signal, name, None)
            if signum is None:
                raise ConfigurationError(f"unknown signal name '{name}'")
            loop.add_signal_handler(
                signum,
                lambda: asyncio.ensure_future(self._checkpoint_and_stop()),
            )

    async def _checkpoint_and_stop(self) -> None:
        """Signal path: capture at the next epoch boundary, persist, exit."""
        assert self._feed is not None and self._engine_done is not None
        if not self._engine_done.is_set():
            request = self._feed.request_checkpoint(stop=True)
            await asyncio.to_thread(request.done.wait)
            if request.checkpoint is not None:
                self._write_checkpoint_file(self.checkpoint_path,
                                            request.checkpoint)
                if self.announce is not None:
                    self.announce(
                        f"checkpoint written to {self.checkpoint_path}; "
                        "resume with --daemon --resume"
                    )
            await self._engine_done.wait()
        assert self._shutdown is not None
        self._shutdown.set()

    # ------------------------------------------------------------ engine thread

    def _engine_main(
        self, system: Any, trace: Trace, feed: LiveArrivalFeed
    ) -> None:
        try:
            faults = self.spec.faults
            fault_plan = faults if faults is not None and len(faults) else None
            outcome = system.serve_live(
                trace,
                workload_name=self.spec.label(),
                arrival_feed=feed,
                fault_plan=fault_plan,
                resume_from=self._resume_checkpoint,
                scalar=self.scalar,
            )
            if isinstance(outcome, EngineCheckpoint):
                self.stop_checkpoint = outcome
            else:
                outcome.system = api.get_system(self.spec.system).display_name
                self.result = outcome
        except BaseException as exc:
            self.error = exc
        finally:
            feed.fail_pending_checkpoints("the engine already exited")
            loop = self._loop
            if loop is not None:
                try:
                    loop.call_soon_threadsafe(self._on_engine_done)
                except RuntimeError:
                    pass  # loop already closed (shutdown race)

    def _on_engine_done(self) -> None:
        assert self._engine_done is not None and self._events_ready is not None
        self._engine_done.set()
        self._events_ready.set()

    def _wake_from_engine(self) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._set_events_ready)
        except RuntimeError:
            pass  # loop already closed (shutdown race)

    def _set_events_ready(self) -> None:
        assert self._events_ready is not None
        self._events_ready.set()

    # ------------------------------------------------------------- trace/resume

    def _make_live_trace(self) -> Trace:
        """The spec's trace shell: SLO metadata intact, requests live-fed.

        Built through :func:`api.trace_for` so slo / tenant_slos / workload
        spec are byte-identical to the batch path, then emptied — the engine
        appends requests as the feed releases them.  On resume the requests
        already inside the engine checkpoint are restored here (the
        checkpoint restore path resolves sequences against the trace).
        """
        trace = api.trace_for(self.spec)
        trace.requests = []
        if self._resume_checkpoint is not None:
            restored_ids = {seq_id for seq_id, _ in
                            self._resume_checkpoint.sequences}
            trace.requests = [
                request for request in self._resume_requests
                if request.request_id in restored_ids
            ]
        return trace

    def _load_resume(self, payload: Mapping[str, Any]) -> None:
        spec_dict = payload.get("spec")
        if spec_dict != self.spec.to_dict():
            raise ConfigurationError(
                "the daemon checkpoint was written for a different deployment "
                "spec; start the resumed daemon with the same spec"
            )
        self._resume_checkpoint = EngineCheckpoint.from_dict(
            dict(payload["checkpoint"])
        )
        self._resume_requests = [
            request_from_dict(data) for data in payload["requests"]
        ]
        self._resume_watermark = float(payload.get("watermark", 0.0))
        self._resume_drained = bool(payload.get("drained", False))

    def _write_checkpoint_file(
        self, path: str, checkpoint: EngineCheckpoint
    ) -> None:
        assert self._feed is not None
        payload = {
            "kind": CHECKPOINT_KIND,
            "version": CHECKPOINT_FILE_VERSION,
            "spec": self.spec.to_dict(),
            "watermark": self._feed.watermark(),
            "drained": self._feed.is_drained(),
            "requests": [
                request_to_dict(request)
                for request in self._feed.known_requests()
            ],
            "checkpoint": checkpoint.as_dict(),
        }
        Path(path).write_text(json.dumps(payload))

    # --------------------------------------------------------------- protocol

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._feed is not None
        stream_id: int | None = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode_message(line)
                except ProtocolError as exc:
                    await self._reply(writer, {"ok": False, "error": str(exc)})
                    continue
                op = str(message.get("op", ""))
                try:
                    if op == "submit":
                        if stream_id is None:
                            stream_id = self._feed.open_stream()
                        reply = self._op_submit(stream_id, message)
                    elif op == "begin_stream":
                        if stream_id is None:
                            stream_id = self._feed.open_stream()
                        reply = {"ok": True, "watermark": self._feed.watermark()}
                    elif op == "end_stream":
                        if stream_id is not None:
                            self._feed.end_stream(stream_id)
                            stream_id = None
                        reply = {"ok": True}
                    elif op == "hello":
                        reply = self._op_hello()
                    elif op == "status":
                        reply = self._op_status()
                    elif op == "metrics":
                        assert self._hub is not None
                        reply = {"ok": True, "metrics": self._hub.metrics()}
                    elif op == "subscribe":
                        self._subscribers.append(writer)
                        reply = {"ok": True, "subscribed": True}
                    elif op == "checkpoint":
                        reply = await self._op_checkpoint(message)
                        if reply.get("ok") and reply.get("stop"):
                            # The engine is gone; the daemon cannot serve
                            # again, so exit once the reply is on the wire
                            # (mirrors the SIGTERM checkpoint path).
                            await self._reply(writer, reply)
                            assert self._shutdown is not None
                            self._shutdown.set()
                            break
                    elif op == "drain":
                        if stream_id is not None:
                            self._feed.end_stream(stream_id)
                            stream_id = None
                        reply = await self._op_drain()
                    elif op == "shutdown":
                        await self._reply(writer, {"ok": True})
                        assert self._shutdown is not None
                        self._shutdown.set()
                        break
                    else:
                        reply = {"ok": False, "error": f"unknown op '{op}'"}
                except (ProtocolError, ConfigurationError, ValueError) as exc:
                    reply = {"ok": False, "error": str(exc)}
                await self._reply(writer, reply)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if stream_id is not None:
                self._feed.end_stream(stream_id)
            if writer in self._subscribers:
                self._subscribers.remove(writer)
            writer.close()

    async def _reply(
        self, writer: asyncio.StreamWriter, payload: Mapping[str, Any]
    ) -> None:
        writer.write(encode_message(payload))
        await writer.drain()

    def _op_hello(self) -> dict[str, Any]:
        return {
            "ok": True,
            "server": "repro-daemon",
            "protocol": PROTOCOL_VERSION,
            "model": self.spec.model,
            "system": self.spec.system,
            "policy": self.spec.config.pipeline.scheduling_policy,
            "scalar": self.scalar,
        }

    def _op_submit(
        self, stream_id: int, message: Mapping[str, Any]
    ) -> dict[str, Any]:
        assert self._feed is not None
        payload = message.get("request")
        if not isinstance(payload, dict):
            raise ProtocolError("submit needs a 'request' object")
        request = request_from_dict(payload)
        accepted = self._feed.submit(stream_id, request)
        return {
            "ok": True,
            "request_id": request.request_id,
            "duplicate": not accepted,
        }

    def _op_status(self) -> dict[str, Any]:
        assert (self._feed is not None and self._hub is not None
                and self._engine_done is not None)
        if self.error is not None:
            state = "failed"
        elif self._engine_done.is_set():
            state = "finished"
        elif self._feed.is_drained():
            state = "draining"
        else:
            state = "serving"
        status: dict[str, Any] = {
            "state": state,
            "watermark": self._feed.watermark(),
            "drained": self._feed.is_drained(),
            "ingested": len(self._feed.known_requests()),
        }
        status.update(self._hub.counters())
        if self.error is not None:
            status["error"] = str(self.error)
        return {"ok": True, "status": status}

    async def _op_checkpoint(
        self, message: Mapping[str, Any]
    ) -> dict[str, Any]:
        assert self._feed is not None and self._engine_done is not None
        if self._engine_done.is_set():
            return {"ok": False,
                    "error": "the engine already finished; nothing to checkpoint"}
        path = str(message.get("path") or self.checkpoint_path)
        stop = bool(message.get("stop", False))
        request = self._feed.request_checkpoint(stop=stop)
        await asyncio.to_thread(request.done.wait)
        if request.checkpoint is None:
            return {"ok": False,
                    "error": request.error or "checkpoint was not captured"}
        self._write_checkpoint_file(path, request.checkpoint)
        reply = {
            "ok": True,
            "path": path,
            "stop": stop,
            "epoch": request.checkpoint.next_epoch_index,
            "time_s": request.checkpoint.time_s,
        }
        if stop:
            await self._engine_done.wait()
        return reply

    async def _op_drain(self) -> dict[str, Any]:
        assert self._feed is not None and self._engine_done is not None
        self._feed.drain()
        await self._engine_done.wait()
        if self.error is not None:
            return {"ok": False, "error": str(self.error)}
        if self.result is None:
            return {"ok": False,
                    "error": "the engine stopped on a checkpoint, not a drain"}
        return {"ok": True, "result": self.result.as_dict()}

    # ----------------------------------------------------------- event pushing

    async def _pump_events(self) -> None:
        """Push telemetry events to subscribers as the engine produces them."""
        assert (self._events_ready is not None and self._hub is not None
                and self._engine_done is not None)
        finished_sent = False
        while True:
            await self._events_ready.wait()
            self._events_ready.clear()
            events = self._hub.pop_events()
            if self._engine_done.is_set() and not finished_sent:
                finished_sent = True
                events.append({
                    "event": "finished",
                    "ok": self.error is None,
                    "drained": self.result is not None,
                })
            if events:
                data = b"".join(encode_message(event) for event in events)
                for writer in list(self._subscribers):
                    try:
                        writer.write(data)
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        if writer in self._subscribers:
                            self._subscribers.remove(writer)
