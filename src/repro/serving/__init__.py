"""Live serving: asyncio daemon, watermark-gated ingestion, fleet client.

The subsystem behind ``repro serve --daemon`` and ``repro client``.  A
:class:`ServingDaemon` owns a built deployment and feeds socket-submitted
requests into the engine's admission queue live; the watermark contract in
:class:`LiveArrivalFeed` guarantees that draining a replayed spec trace
reproduces the batch ``serve(spec)`` metrics bit for bit.
"""

from .client import DaemonClient, replay_spec
from .daemon import ServingDaemon, load_daemon_checkpoint
from .feed import CheckpointRequest, LiveArrivalFeed
from .fleet import DaemonFleet, DaemonHandle, serve_via_daemon, start_daemon
from .protocol import (
    CHECKPOINT_FILE_VERSION,
    CHECKPOINT_KIND,
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    request_from_dict,
    request_to_dict,
)
from .telemetry import TelemetryHub

__all__ = [
    "CHECKPOINT_FILE_VERSION",
    "CHECKPOINT_KIND",
    "PROTOCOL_VERSION",
    "CheckpointRequest",
    "DaemonClient",
    "DaemonFleet",
    "DaemonHandle",
    "LiveArrivalFeed",
    "ServingDaemon",
    "TelemetryHub",
    "decode_message",
    "encode_message",
    "load_daemon_checkpoint",
    "replay_spec",
    "request_from_dict",
    "request_to_dict",
    "serve_via_daemon",
    "start_daemon",
]
