"""Live arrival feed: the thread-safe bridge between ingestion and the engine.

The daemon's asyncio loop accepts requests on sockets; the engine runs the
epoch loop in a worker thread.  :class:`LiveArrivalFeed` sits between them
and enforces the *watermark contract* that makes live ingestion bit-for-bit
equal to batch serving:

* Every connection is a **stream**.  A stream's watermark is the highest
  ``arrival_time`` it has submitted — its promise that it will never submit
  an earlier arrival.  The feed's global watermark is the minimum over the
  open streams' watermarks (monotone non-decreasing: a stream that ends
  simply stops holding the minimum down).
* A submitted request is **buffered** until its arrival time is covered by
  the global watermark, then **released** to the engine in
  ``(arrival_time, request_id)`` order — the order a batch trace generator
  emits — so admission-queue order matches the equivalent batch submission.
* The engine (see ``PipelineEngine._drive``) never simulates past the global
  watermark: it blocks in :meth:`wait_ready` until clients have promised the
  step it wants to take is free of unseen arrivals, or the feed is
  **drained** (no further submissions ever; everything buffered is released).

Submission is idempotent per ``request_id`` — a re-submitted id is
acknowledged but not queued again — which makes client retry loops safe.

The feed also carries two control channels into the engine thread: pending
:class:`CheckpointRequest` objects (served at the next epoch boundary, even
while the engine is blocked waiting for input) and, outward, per-epoch
telemetry via an attached :class:`~repro.serving.telemetry.TelemetryHub`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Iterable

from ..pipeline.checkpoint import EngineCheckpoint
from ..workload.requests import Request, Sequence
from ..workload.scheduler import InterSequenceScheduler
from .telemetry import TelemetryHub


class CheckpointRequest:
    """One checkpoint order travelling from the daemon into the engine thread.

    The engine fills ``checkpoint`` (or the feed fills ``error`` if the
    engine exits first) and sets ``done``; with ``stop`` the engine halts
    after capturing — the graceful-restart (``SIGTERM``) path.
    """

    def __init__(self, *, stop: bool = False) -> None:
        self.stop = stop
        self.done = threading.Event()
        self.checkpoint: EngineCheckpoint | None = None
        self.error: str | None = None


class LiveArrivalFeed:
    """Watermark-gated request queue between ingestion and the engine."""

    def __init__(
        self,
        *,
        watermark: float = 0.0,
        known: Iterable[Request] = (),
        pending: Iterable[Request] = (),
        telemetry: TelemetryHub | None = None,
        notifier: Callable[[], None] | None = None,
    ) -> None:
        """``known``/``pending``/``watermark`` preload a resumed daemon:
        ``known`` is every request ever accepted (the dedupe record written to
        the checkpoint file), ``pending`` the subset the engine had not yet
        ingested when the checkpoint was captured.  ``notifier`` is called
        (possibly from the engine thread) whenever telemetry events or a
        finished state may be waiting — the daemon wires it to wake its
        asyncio loop.
        """
        self._cond = threading.Condition()
        self._watermark = watermark
        self._streams: dict[int, float] = {}
        self._next_stream_id = 0
        self._buffered: list[Request] = []
        self._released: deque[Request] = deque()
        self._accepted: list[Request] = []
        self._known_ids: set[int] = set()
        self._drained = False
        self._checkpoints: deque[CheckpointRequest] = deque()
        self.telemetry = telemetry
        self._notifier = notifier
        for request in known:
            self._accepted.append(request)
            self._known_ids.add(request.request_id)
        for request in pending:
            self._buffered.append(request)
        self._release_covered_locked()

    # ---------------------------------------------------------- client side

    def open_stream(self) -> int:
        """Register a new submission stream (one per client connection).

        The stream's initial watermark is the current global watermark: it
        promises nothing earlier than what every client already promised.
        """
        with self._cond:
            stream_id = self._next_stream_id
            self._next_stream_id += 1
            self._streams[stream_id] = self._watermark
            return stream_id

    def submit(self, stream_id: int, request: Request) -> bool:
        """Queue one request; False when ``request_id`` was already ingested.

        Raises :class:`ValueError` after :meth:`drain` — a drained feed has
        promised the engine no further input ever arrives.
        """
        with self._cond:
            if self._drained:
                raise ValueError("the feed is drained; no further submissions")
            if request.request_id in self._known_ids:
                return False
            self._known_ids.add(request.request_id)
            self._accepted.append(request)
            if request.arrival_time <= self._watermark:
                # Already covered (batch traces arrive at t=0, and a stream
                # may submit behind other streams' promises): release
                # immediately, in submission order.
                self._released.append(request)
            else:
                self._buffered.append(request)
            watermark = self._streams.get(stream_id, self._watermark)
            if request.arrival_time > watermark:
                self._streams[stream_id] = request.arrival_time
                self._advance_watermark_locked()
            self._cond.notify_all()
            return True

    def end_stream(self, stream_id: int) -> None:
        """Drop a stream's watermark promise (its connection closed)."""
        with self._cond:
            if self._streams.pop(stream_id, None) is not None:
                self._advance_watermark_locked()
                self._cond.notify_all()

    def drain(self) -> None:
        """No client will ever submit again: release everything buffered."""
        with self._cond:
            self._drained = True
            self._release_covered_locked()
            self._cond.notify_all()

    def request_checkpoint(self, *, stop: bool = False) -> CheckpointRequest:
        """Ask the engine for a checkpoint at its next epoch boundary."""
        request = CheckpointRequest(stop=stop)
        with self._cond:
            self._checkpoints.append(request)
            self._cond.notify_all()
        return request

    def fail_pending_checkpoints(self, reason: str) -> None:
        """Resolve outstanding checkpoint requests the engine will never see."""
        with self._cond:
            while self._checkpoints:
                request = self._checkpoints.popleft()
                request.error = reason
                request.done.set()

    def known_requests(self) -> list[Request]:
        """Every request ever accepted (the checkpoint file's replay record)."""
        with self._cond:
            return list(self._accepted)

    # ---------------------------------------------------------- engine side

    def watermark(self) -> float:
        with self._cond:
            return self._watermark

    def is_drained(self) -> bool:
        with self._cond:
            return self._drained

    def is_finished(self) -> bool:
        """Drained and every accepted request handed to the engine."""
        with self._cond:
            return self._drained and not self._buffered and not self._released

    def take_released(self) -> list[Request]:
        """Claim the requests released since the last call (engine thread)."""
        with self._cond:
            released = list(self._released)
            self._released.clear()
            return released

    # The feed also speaks the pull side of the lazy
    # :class:`~repro.workload.streams.RequestStream` interface, over the
    # released queue: a consumer that pulls traces from a stream can pull
    # live arrivals from a feed the same way.  ``peek_arrival`` only sees
    # watermark-covered requests, so the contract (never emit an arrival
    # earlier than one already peeked) holds by construction.

    def peek_arrival(self) -> float | None:
        """Arrival time of the next released request (None = none released)."""
        with self._cond:
            return self._released[0].arrival_time if self._released else None

    def pop(self) -> Request:
        """Claim the next released request, in batch-trace order."""
        with self._cond:
            if not self._released:
                raise IndexError("no released request to pop")
            return self._released.popleft()

    @property
    def exhausted(self) -> bool:
        """True once drained with every accepted request claimed."""
        with self._cond:
            return self._drained and not self._buffered and not self._released

    def take_checkpoint_request(self) -> CheckpointRequest | None:
        with self._cond:
            return self._checkpoints.popleft() if self._checkpoints else None

    def deliver_checkpoint(
        self, request: CheckpointRequest, checkpoint: EngineCheckpoint
    ) -> None:
        request.checkpoint = checkpoint
        request.done.set()

    def wait_ready(self, horizon: float | None) -> bool:
        """Block until the engine may proceed; False = a checkpoint is pending.

        With a ``horizon``, proceed once the watermark covers it (no unseen
        arrival can land inside the step) or the feed is drained.  With
        ``horizon=None``, proceed once *any* new input is released or the
        feed is drained.  A pending checkpoint request interrupts the wait so
        the engine can serve it at this (blocked = epoch) boundary.
        """
        with self._cond:
            while True:
                if self._checkpoints:
                    return False
                if self._drained:
                    return True
                if horizon is None:
                    if self._released:
                        return True
                elif self._watermark >= horizon:
                    return True
                self._cond.wait()

    def notify_epoch(
        self,
        time_s: float,
        finished: list[Sequence],
        scheduler: InterSequenceScheduler,
    ) -> None:
        """Engine hook after each committed epoch: telemetry + daemon wakeup."""
        if self.telemetry is not None:
            self.telemetry.record_epoch(time_s, finished, scheduler)
        if self._notifier is not None:
            self._notifier()

    # ------------------------------------------------------------- internals

    def _advance_watermark_locked(self) -> None:
        """Recompute the global watermark (min over open streams, monotone)."""
        if not self._streams:
            return  # no open promises: the watermark holds where it is
        candidate = min(self._streams.values())
        if candidate > self._watermark:
            self._watermark = candidate
            self._release_covered_locked()

    def _release_covered_locked(self) -> None:
        """Move buffered requests covered by the watermark to the release
        queue, in the batch generator's (arrival_time, request_id) order."""
        if self._drained:
            ready, keep = self._buffered, []
        else:
            ready = [r for r in self._buffered
                     if r.arrival_time <= self._watermark]
            keep = [r for r in self._buffered
                    if r.arrival_time > self._watermark]
        if ready:
            ready.sort(key=lambda r: (r.arrival_time, r.request_id))
            self._released.extend(ready)
        self._buffered = keep
