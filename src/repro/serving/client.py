"""Client library for the live serving daemon.

:class:`DaemonClient` speaks the newline-delimited JSON protocol over a
plain blocking socket (clients have no reason to be async — the daemon
multiplexes).  :func:`replay_spec` is the workhorse used by the CLI, the
fleet runner and the parity tests: it regenerates a spec's deterministic
trace, streams every request into a daemon in arrival order, drains, and
returns the final result dict — which is bit-for-bit the batch
``serve(spec)`` result.
"""

from __future__ import annotations

import socket
from types import TracebackType
from typing import Any, Iterator, Mapping

from .. import api
from ..errors import ProtocolError
from ..workload.requests import Request
from .protocol import decode_message, encode_message, request_to_dict


class DaemonClient:
    """One protocol connection to a serving daemon."""

    def __init__(
        self, host: str, port: int, *, timeout: float | None = 60.0
    ) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ProtocolError(
                f"cannot connect to daemon at {host}:{port}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")

    # ----------------------------------------------------------------- plumbing

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def call(
        self, op: str, timeout: float | None = None, **fields: Any
    ) -> dict[str, Any]:
        """Send one operation and return its reply object.

        Raises :class:`ProtocolError` when the daemon reports ``ok`` false.
        ``timeout`` overrides the socket timeout for this call only (drain
        can legitimately take much longer than a status poll).
        """
        if timeout is not None:
            previous = self._sock.gettimeout()
            self._sock.settimeout(timeout)
        try:
            self._file.write(encode_message({"op": op, **fields}))
            self._file.flush()
            line = self._file.readline()
        finally:
            if timeout is not None:
                self._sock.settimeout(previous)
        if not line:
            raise ProtocolError("the daemon closed the connection mid-call")
        reply = decode_message(line)
        if not reply.get("ok", False):
            raise ProtocolError(
                reply.get("error") or f"daemon refused operation '{op}'"
            )
        return reply

    # --------------------------------------------------------------- operations

    def hello(self) -> dict[str, Any]:
        return self.call("hello")

    def begin_stream(self) -> dict[str, Any]:
        """Open this connection's stream now (instead of on first submit).

        Required before other clients may advance the watermark past the
        arrivals this connection intends to submit — e.g. a multi-client
        replay begins every stream before anyone submits.
        """
        return self.call("begin_stream")

    def submit(self, request: Request | Mapping[str, Any]) -> dict[str, Any]:
        payload = (request_to_dict(request)
                   if isinstance(request, Request) else dict(request))
        return self.call("submit", request=payload)

    def end_stream(self) -> None:
        self.call("end_stream")

    def status(self) -> dict[str, Any]:
        return self.call("status")["status"]

    def metrics(self) -> dict[str, Any]:
        return self.call("metrics")["metrics"]

    def checkpoint(
        self, path: str | None = None, *, stop: bool = False,
        timeout: float | None = 600.0,
    ) -> dict[str, Any]:
        fields: dict[str, Any] = {"stop": stop}
        if path is not None:
            fields["path"] = path
        return self.call("checkpoint", timeout=timeout, **fields)

    def drain(self, timeout: float | None = 600.0) -> dict[str, Any]:
        """Declare end of input, wait for the run, return the result dict."""
        return self.call("drain", timeout=timeout)["result"]

    def shutdown(self) -> None:
        self.call("shutdown")

    def subscribe(self) -> None:
        """Turn this connection into an event stream (see :meth:`events`)."""
        self.call("subscribe")

    def events(self, timeout: float | None = 600.0) -> Iterator[dict[str, Any]]:
        """Yield pushed events until the ``finished`` event or disconnect.

        Only valid after :meth:`subscribe`; issuing other operations on this
        connection while iterating would interleave replies with events.
        """
        self._sock.settimeout(timeout)
        while True:
            line = self._file.readline()
            if not line:
                return
            event = decode_message(line)
            yield event
            if event.get("event") == "finished":
                return


def replay_spec(
    spec: api.DeploymentSpec,
    host: str,
    port: int,
    *,
    shutdown: bool = False,
    timeout: float | None = 600.0,
) -> dict[str, Any]:
    """Replay a spec's trace into a daemon and drain: the batch result, live.

    Submits the spec's deterministic trace in arrival order over one stream,
    then drains.  The returned result dict is bit-for-bit equal to
    ``api.serve(spec).as_dict()`` — the load-bearing property of the live
    serving path.  The trace is pulled lazily from :func:`api.stream_for`
    (which emits the exact requests ``trace_for`` would materialise, already
    in ``(arrival_time, request_id)`` order), so replaying a million-request
    spec holds O(1) requests client-side.  With ``shutdown`` the daemon is
    stopped after draining.
    """
    stream = api.stream_for(spec.validate())
    with DaemonClient(host, port, timeout=timeout) as client:
        for request in stream:
            client.submit(request)
        client.end_stream()
        result = client.drain(timeout=timeout)
        if shutdown:
            client.shutdown()
    return result
