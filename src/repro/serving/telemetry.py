"""Streaming telemetry for the live serving daemon.

The engine thread calls :meth:`TelemetryHub.record_epoch` after every
committed epoch (via the arrival feed's ``notify_epoch`` hook); the daemon's
asyncio loop drains per-request events with :meth:`pop_events` and pushes
them to subscribed clients, and answers ``metrics`` queries from
:meth:`metrics` while the run is live.

Rolling-window metrics are computed over *simulated* time — the engine's
clock, not the wall clock — so they are as deterministic as the run itself.
The per-tenant payload is built through :class:`~repro.results.TenantStats`
itself, so live metrics and batch results report exactly the same fields
(``requests`` / ``ttft`` / ``latency`` / ``goodput`` / ``shed`` /
``queue_depth`` / ``admission_wait``).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from ..results import LatencyStats, TenantStats
from ..workload.requests import SLOTarget, Sequence
from ..workload.scheduler import InterSequenceScheduler


@dataclass(frozen=True)
class _Completion:
    """One finished request, as the rolling window keeps it."""

    time_s: float
    tenant: str
    ttft_s: float | None
    latency_s: float | None
    admission_wait_s: float | None
    #: SLO met (None = no SLO applies to this tenant)
    met: bool | None


@dataclass(frozen=True)
class _Shed:
    time_s: float
    tenant: str


class TelemetryHub:
    """Thread-safe rolling-window metrics + completion event stream."""

    def __init__(
        self,
        *,
        window_s: float = 60.0,
        slo_for: Callable[[str], SLOTarget | None] | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self.window_s = window_s
        self._slo_for = slo_for
        self._events: list[dict[str, Any]] = []
        self._completions: deque[_Completion] = deque()
        self._sheds: deque[_Shed] = deque()
        self._time_s = 0.0
        self._completed_total = 0
        self._shed_total = 0
        self._seen_shed = 0
        self._active = 0
        self._queue_depths: dict[str, int] = {}

    # ------------------------------------------------------------ engine side

    def record_epoch(
        self,
        time_s: float,
        finished: list[Sequence],
        scheduler: InterSequenceScheduler,
    ) -> None:
        """Fold one committed epoch into the window (engine thread)."""
        with self._lock:
            self._time_s = time_s
            self._active = scheduler.num_active
            self._queue_depths = scheduler.queue_depths()
            for sequence in finished:
                request = sequence.request
                wait = (
                    sequence.admission_time - request.arrival_time
                    if sequence.admission_time is not None
                    else None
                )
                met: bool | None = None
                if self._slo_for is not None:
                    slo = self._slo_for(request.tenant)
                    if slo is not None:
                        met = slo.met_by(sequence.ttft_s, sequence.latency_s)
                self._completions.append(_Completion(
                    time_s=time_s,
                    tenant=request.tenant,
                    ttft_s=sequence.ttft_s,
                    latency_s=sequence.latency_s,
                    admission_wait_s=wait,
                    met=met,
                ))
                self._completed_total += 1
                self._events.append({
                    "event": "completion",
                    "request_id": request.request_id,
                    "tenant": request.tenant,
                    "completion_time_s": time_s,
                    "ttft_s": sequence.ttft_s,
                    "latency_s": sequence.latency_s,
                    "admission_wait_s": wait,
                })
            shed = scheduler.shed
            for sequence in shed[self._seen_shed:]:
                request = sequence.request
                self._sheds.append(_Shed(time_s=time_s, tenant=request.tenant))
                self._shed_total += 1
                self._events.append({
                    "event": "shed",
                    "request_id": request.request_id,
                    "tenant": request.tenant,
                    "time_s": time_s,
                })
            self._seen_shed = len(shed)
            self._evict_locked()

    # ------------------------------------------------------------ daemon side

    def pop_events(self) -> list[dict[str, Any]]:
        """Claim the per-request events recorded since the last call."""
        with self._lock:
            events = self._events
            self._events = []
            return events

    def counters(self) -> dict[str, Any]:
        """Cheap cumulative state for the ``status`` operation."""
        with self._lock:
            return {
                "time_s": self._time_s,
                "completed": self._completed_total,
                "shed": self._shed_total,
                "active": self._active,
                "waiting": sum(self._queue_depths.values()),
            }

    def metrics(self) -> dict[str, Any]:
        """Rolling-window metrics, per tenant and aggregate."""
        with self._lock:
            self._evict_locked()
            completions = list(self._completions)
            sheds = list(self._sheds)
            depths = dict(self._queue_depths)
            tenants = sorted(
                {c.tenant for c in completions}
                | {s.tenant for s in sheds}
                | set(depths)
            )
            payload: dict[str, Any] = {
                "time_s": self._time_s,
                "window_s": self.window_s,
                "completed": self._completed_total,
                "shed": self._shed_total,
                "active": self._active,
                "aggregate": self._stats_dict(completions, sheds,
                                              sum(depths.values())),
                "tenants": {
                    tenant: self._stats_dict(
                        [c for c in completions if c.tenant == tenant],
                        [s for s in sheds if s.tenant == tenant],
                        depths.get(tenant, 0),
                    )
                    for tenant in tenants
                },
            }
            return payload

    # ------------------------------------------------------------- internals

    def _evict_locked(self) -> None:
        floor = self._time_s - self.window_s
        while self._completions and self._completions[0].time_s < floor:
            self._completions.popleft()
        while self._sheds and self._sheds[0].time_s < floor:
            self._sheds.popleft()

    @staticmethod
    def _stats_dict(
        completions: list[_Completion],
        sheds: list[_Shed],
        queue_depth: int,
    ) -> dict[str, Any]:
        # Mirrors the batch rule: shed requests count against goodput, and
        # goodput is None when no SLO applied to anything in the window.
        judged = [c for c in completions if c.met is not None]
        goodput: float | None = None
        if judged or sheds:
            goodput = sum(1 for c in judged if c.met) / (len(judged) + len(sheds))
        stats = TenantStats(
            requests=len(completions),
            ttft=LatencyStats.from_samples(
                [c.ttft_s for c in completions if c.ttft_s is not None]
            ),
            latency=LatencyStats.from_samples(
                [c.latency_s for c in completions if c.latency_s is not None]
            ),
            goodput=goodput,
            shed=len(sheds),
            queue_depth=queue_depth,
            admission_wait=LatencyStats.from_samples(
                [c.admission_wait_s for c in completions
                 if c.admission_wait_s is not None]
            ),
        )
        return stats.as_dict()
