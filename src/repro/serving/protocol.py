"""Wire protocol of the live serving daemon.

Newline-delimited JSON over a local TCP socket: every message is one JSON
object on one line.  Client -> daemon messages carry an ``op`` field; the
daemon answers each with exactly one reply object carrying ``ok`` (plus
``error`` when ``ok`` is false).  A connection that issued ``subscribe``
additionally receives pushed event objects (carrying ``event`` instead of
``ok``) interleaved after the subscribe reply.

Operations
----------

``hello``
    Identify the daemon: protocol version, spec model/system/policy.
``begin_stream``
    Open this connection's submission stream *now* instead of lazily on the
    first ``submit``.  A stream opens at the current global watermark, so a
    client that will submit historical arrivals must register its stream
    before other clients advance the watermark past them — multi-client
    replays issue ``begin_stream`` on every connection first, then submit.
``submit``
    ``{"op": "submit", "request": {...}}`` — queue one request (the dict is a
    :class:`~repro.workload.requests.Request` as produced by
    :func:`request_to_dict`).  Replies with ``request_id`` and ``duplicate``
    (idempotent: re-submitting an already-ingested id is acknowledged but not
    queued again).  Submissions on one connection must be ordered by
    ``arrival_time``; each connection is one *stream* whose highest submitted
    arrival is its watermark promise (see :class:`~repro.serving.feed.
    LiveArrivalFeed`).
``end_stream``
    Close this connection's stream promise without closing the connection
    (closing the connection implies it): the daemon may then simulate past
    this client's last submitted arrival time.
``status``
    Engine state snapshot: counts, simulated clock, watermark, lifecycle
    state (``serving`` / ``draining`` / ``finished`` / ``failed``).
``metrics``
    Rolling-window live metrics, per tenant and aggregate, in the exact
    per-tenant shape of :class:`~repro.results.TenantStats` ``as_dict``.
``subscribe``
    Start receiving pushed per-request ``completion`` / ``shed`` events and a
    final ``finished`` event on this connection.
``checkpoint``
    ``{"op": "checkpoint", "path": ..., "stop": false}`` — capture a full
    :class:`~repro.pipeline.checkpoint.EngineCheckpoint` at the next epoch
    boundary and write the daemon checkpoint file; with ``stop`` true the
    engine halts and the daemon exits after replying (the protocol twin of
    the ``--checkpoint-on SIGTERM`` path).
``drain``
    Declare that no client will submit further requests, wait for the engine
    to finish everything ingested, and reply with the final
    :class:`~repro.results.RunResult` dict — bit-for-bit the batch
    ``serve(spec)`` result when the submitted requests replay a spec's trace.
``shutdown``
    Stop the daemon loop (drain first for a clean result).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Mapping

from ..errors import ProtocolError, SchedulingError
from ..workload.requests import DEFAULT_TENANT, Request

#: bump when the wire format changes incompatibly
PROTOCOL_VERSION = 1

#: marker and layout version of the daemon checkpoint file (which embeds an
#: engine checkpoint plus the ingestion state needed to resume serving)
CHECKPOINT_KIND = "repro-daemon-checkpoint"
CHECKPOINT_FILE_VERSION = 1


def encode_message(payload: Mapping[str, Any]) -> bytes:
    """One protocol message: compact JSON object plus the line terminator."""
    return json.dumps(dict(payload), separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one received line into a message object."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"protocol messages must be JSON objects, got {type(payload).__name__}"
        )
    return payload


def request_to_dict(request: Request) -> dict[str, Any]:
    """Serialise a request for the ``submit`` operation (full round trip)."""
    return asdict(request)


def request_from_dict(data: Mapping[str, Any]) -> Request:
    """Rebuild a :class:`Request` from a ``submit`` payload.

    Only ``request_id``, ``prefill_length`` and ``decode_length`` are
    required; the rest default exactly as on :class:`Request`, so hand-written
    clients can stay minimal.  Validation errors surface as
    :class:`ProtocolError` (the daemon replies, it must not crash).
    """
    try:
        return Request(
            request_id=int(data["request_id"]),
            prefill_length=int(data["prefill_length"]),
            decode_length=int(data["decode_length"]),
            arrival_time=float(data.get("arrival_time", 0.0)),
            tenant=str(data.get("tenant", DEFAULT_TENANT)),
            weight=float(data.get("weight", 1.0)),
            priority=int(data.get("priority", 0)),
        )
    except (KeyError, TypeError, ValueError, SchedulingError) as exc:
        raise ProtocolError(f"invalid request payload: {exc}") from exc
