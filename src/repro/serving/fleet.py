"""Run daemons programmatically: in-process handles and fleet sweeps.

:func:`start_daemon` boots a :class:`~repro.serving.daemon.ServingDaemon`
on a background thread and hands back a :class:`DaemonHandle` once it is
listening.  :func:`serve_via_daemon` is the one-call round trip used by the
parity tests — start a daemon, replay the spec's trace into it, drain, stop —
whose result dict is bit-for-bit the batch ``serve(spec)`` result.

:class:`DaemonFleet` drives one daemon per spec concurrently — the
daemon-backed sweep mode.  Starting many daemons at once also exercises the
thread-safety of ``api.build_deployment``'s memo.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping

from .. import api
from ..errors import ConfigurationError, ProtocolError
from .client import DaemonClient, replay_spec
from .daemon import ServingDaemon


class DaemonHandle:
    """A daemon running on a background thread, plus its address."""

    def __init__(self, daemon: ServingDaemon, thread: threading.Thread) -> None:
        self.daemon = daemon
        self.thread = thread
        assert daemon.address is not None
        self.host, self.port = daemon.address

    def client(self, *, timeout: float | None = 60.0) -> DaemonClient:
        return DaemonClient(self.host, self.port, timeout=timeout)

    def replay(self, *, timeout: float | None = 600.0) -> dict[str, Any]:
        """Replay the daemon's own spec trace and drain (daemon keeps running)."""
        return replay_spec(self.daemon.spec, self.host, self.port,
                           timeout=timeout)

    def stop(self, *, timeout: float | None = 60.0) -> None:
        """Shut the daemon down and join its thread."""
        if not self.daemon.finished.is_set():
            try:
                with self.client(timeout=timeout) as client:
                    client.shutdown()
            except (OSError, ProtocolError):
                pass  # already gone (or went away mid-call)
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_daemon(
    spec: api.DeploymentSpec,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    scalar: bool = False,
    window_s: float = 60.0,
    checkpoint_path: str = "daemon-checkpoint.json",
    resume_payload: Mapping[str, Any] | None = None,
    start_timeout: float = 120.0,
) -> DaemonHandle:
    """Boot a daemon on a background thread; returns once it is listening.

    Background daemons never install signal handlers (signals belong to the
    main thread); use the protocol's ``checkpoint`` operation instead.
    """
    daemon = ServingDaemon(
        spec,
        host=host,
        port=port,
        scalar=scalar,
        window_s=window_s,
        checkpoint_path=checkpoint_path,
        resume_payload=resume_payload,
    )
    thread = threading.Thread(
        target=daemon.run, name=f"repro-daemon-{spec.label()}", daemon=True
    )
    thread.start()
    if not daemon.ready.wait(timeout=start_timeout):
        raise ConfigurationError(
            f"daemon for {spec.label()} did not start within {start_timeout}s"
        )
    if daemon.error is not None:
        thread.join(timeout=5.0)
        raise ConfigurationError(
            f"daemon for {spec.label()} failed to start: {daemon.error}"
        ) from daemon.error
    return DaemonHandle(daemon, thread)


def serve_via_daemon(
    spec: api.DeploymentSpec, *, scalar: bool = False,
    timeout: float = 600.0,
) -> dict[str, Any]:
    """Serve a spec through a live daemon round trip; the batch result dict."""
    with start_daemon(spec, scalar=scalar) as handle:
        return handle.replay(timeout=timeout)


class DaemonFleet:
    """One daemon per spec, replayed concurrently — the fleet sweep client."""

    def __init__(
        self, specs: list[api.DeploymentSpec], *, max_workers: int | None = None
    ) -> None:
        self.specs = specs
        self.max_workers = max_workers or min(4, max(1, len(specs)))

    def run(self) -> list[dict[str, Any]]:
        """Start all daemons, replay each spec into its own, stop everything.

        Results come back in spec order.  All daemons build concurrently —
        a live stress of the deployment-memo lock.
        """
        handles: list[DaemonHandle] = []
        try:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                handles = list(pool.map(start_daemon, self.specs))
                return list(pool.map(
                    lambda handle: handle.replay(), handles
                ))
        finally:
            for handle in handles:
                handle.stop()
