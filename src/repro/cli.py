"""Command-line interface for the Ouroboros reproduction.

Four sub-commands cover the workflows a downstream user needs:

``summary``
    Build a deployment for a model and print its core/KV/pipeline summary.

``serve``
    Serve one of the paper's workloads on Ouroboros (and optionally the
    baselines) and print throughput, energy per token and the energy
    breakdown.  ``--arrival-rate R`` switches to open-loop serving: requests
    arrive as a Poisson process at R requests/s and the report adds TTFT and
    end-to-end latency percentiles.  ``--system`` serves on any registered
    system (``python -m repro serve llama-13b --system tpu-v4``).

``experiment``
    Regenerate one of the paper's figures (``fig01`` ... ``fig24``,
    ``headline`` or ``all``) and print the regenerated rows.  ``fig22``
    (open-loop arrival-rate sweep), ``fig23`` (multi-tenant SLO goodput
    vs. offered load) and ``fig24`` (scheduling-policy comparison under the
    fig23 sweep) go beyond the paper's own figures.

``bench``
    Time the headline experiments stage by stage (system build, serving,
    the comparison grid, the mapping annealer) and write a machine-readable
    JSON report so the repository keeps a perf trajectory across PRs.

Every command describes its run as a :class:`repro.api.DeploymentSpec` and
executes it through the single :func:`repro.api.serve` entry point.

Examples::

    python -m repro summary llama-13b
    python -m repro serve llama-13b --workload lp128_ld2048 --requests 200 --baselines
    python -m repro serve llama-13b --arrival-rate 25 --requests 200
    python -m repro experiment fig11
    python -m repro experiment fig13 --requests 100 --models llama-13b
    python -m repro experiment fig22 --requests 100
    python -m repro experiment fig23 --requests 100
    python -m repro experiment fig24 --requests 100
    python -m repro bench --output BENCH_PR5.json
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from dataclasses import replace

from . import api
from .errors import ConfigurationError
from .experiments import ALL_EXPERIMENTS, ExperimentSettings
from .experiments.common import (
    OUROBOROS_NAME,
    cell_deployments,
    normalized_energy,
    normalized_throughput,
)
from .models.architectures import MODEL_REGISTRY
from .workload.generator import PAPER_WORKLOADS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ouroboros wafer-scale CIM reproduction (ASPLOS'26)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summary = subparsers.add_parser("summary", help="print a deployment summary")
    summary.add_argument("model", choices=sorted(MODEL_REGISTRY))
    summary.add_argument("--system", choices=sorted(api.SYSTEM_REGISTRY),
                         default="ouroboros",
                         help="registered system to summarise")
    summary.add_argument("--anneal", type=int, default=50,
                         help="annealing iterations for the inter-core mapper")
    summary.add_argument("--wafers", type=int, default=None,
                         help="force a wafer count (default: smallest that fits)")

    serve = subparsers.add_parser("serve", help="serve a workload and report results")
    serve.add_argument("model", choices=sorted(MODEL_REGISTRY))
    serve.add_argument("--workload", choices=PAPER_WORKLOADS, default="wikitext2")
    serve.add_argument("--system", choices=sorted(api.SYSTEM_REGISTRY),
                       default="ouroboros",
                       help="registered system to serve on")
    serve.add_argument("--requests", type=int, default=200)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--kv-threshold", type=float, default=0.1)
    serve.add_argument("--arrival-rate", type=float, default=0.0,
                       help="open-loop Poisson arrival rate in requests/s "
                            "(0 = closed batch, all requests at t=0)")
    serve.add_argument("--policy", choices=sorted(api.POLICY_NAMES),
                       default="fcfs",
                       help="scheduler admission-order policy")
    serve.add_argument("--baselines", action="store_true",
                       help="also run the DGX/TPU/AttAcc/Cerebras baselines")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    experiment.add_argument(
        "figure", choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="figure to regenerate (or 'all')",
    )
    experiment.add_argument("--requests", type=int, default=150)
    experiment.add_argument("--anneal", type=int, default=50)
    experiment.add_argument("--models", nargs="*", default=None,
                            help="restrict to these models where supported")

    bench = subparsers.add_parser(
        "bench", help="time the headline experiments and emit a JSON report"
    )
    bench.add_argument("--requests", type=int, default=150,
                       help="requests per workload (the paper uses 1000)")
    bench.add_argument("--output", default="BENCH_PR5.json",
                       help="path of the JSON report (default: BENCH_PR5.json)")
    bench.add_argument("--models", nargs="*", default=None,
                       help="restrict the grid to these models")
    bench.add_argument("--label", default="headline",
                       help="label recorded in the report")
    bench.add_argument("--anneal-micro", type=int, default=500,
                       help="iterations for the annealer microbenchmark")
    return parser


def _print_summary(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(anneal_iterations=args.anneal)
    spec = settings.deployment(args.model, "wikitext2", system=args.system)
    if args.wafers is not None:
        spec = replace(
            spec,
            config=replace(spec.config, num_wafers=args.wafers),
            auto_scale_wafers=False,
        )
    system = api.build_deployment(spec)
    print(f"{api.resolve_model(spec.model)}")
    for key, value in system.summary().items():
        if isinstance(value, float):
            print(f"  {key:>16}: {value:,.2f}")
        else:
            print(f"  {key:>16}: {value}")
    return 0


def _print_result_row(name: str, result, reference=None) -> None:
    speedup = ""
    if reference is not None and reference.throughput_tokens_per_s > 0:
        speedup = f"{result.throughput_tokens_per_s / reference.throughput_tokens_per_s:7.2f}x"
    print(
        f"  {name:<16} {result.throughput_tokens_per_s:>14,.0f} tok/s "
        f"{result.energy_per_output_token_j * 1e3:>10.3f} mJ/tok {speedup}"
    )


def _serve(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(
        num_requests=args.requests,
        seed=args.seed,
        kv_threshold=args.kv_threshold,
        arrival_rate_per_s=args.arrival_rate,
        scheduling_policy=args.policy,
    )
    try:
        if args.baselines:
            specs = cell_deployments(args.model, args.workload, settings)
        else:
            specs = [settings.deployment(args.model, args.workload, system=args.system)]
        for spec in specs:
            spec.validate()
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    arch = api.resolve_model(args.model)
    mode = (
        f"open-loop at {args.arrival_rate:g} req/s" if args.arrival_rate > 0 else "batch"
    )
    print(f"Serving {args.requests} '{args.workload}' requests of {arch.name} ({mode})")
    if args.baselines:
        results = {}
        for spec in specs:
            try:
                result = api.serve(spec)
            except ConfigurationError:
                continue
            key = OUROBOROS_NAME if spec.system == "ouroboros" else result.system
            results[key] = result
        reference = results["DGX A100"]
        for name, result in results.items():
            _print_result_row(name, result, reference)
        print("\n  normalized throughput:", {
            k: round(v, 2) for k, v in normalized_throughput(results).items()
        })
        print("  normalized energy:    ", {
            k: round(v, 2) for k, v in normalized_energy(results).items()
        })
    else:
        result = api.serve(specs[0])
        _print_result_row(result.system, result)
        print("  energy breakdown:", {
            k: f"{v:.1%}" for k, v in result.energy.fractions().items()
        })
        print(f"  utilization: {result.utilization:.1%}  evictions: {result.evictions}")
        if args.arrival_rate > 0:
            print(
                f"  TTFT p50/p95: {result.ttft.p50_s * 1e3:.1f}/"
                f"{result.ttft.p95_s * 1e3:.1f} ms  "
                f"latency p50/p95/p99: {result.latency.p50_s * 1e3:.1f}/"
                f"{result.latency.p95_s * 1e3:.1f}/"
                f"{result.latency.p99_s * 1e3:.1f} ms"
            )
    return 0


def _experiment(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(
        num_requests=args.requests, anneal_iterations=args.anneal
    )
    figures = sorted(ALL_EXPERIMENTS) if args.figure == "all" else [args.figure]
    for figure in figures:
        module = ALL_EXPERIMENTS[figure]
        kwargs = {}
        if args.models and hasattr(module, "run"):
            # Pass a model restriction only to drivers that accept it.
            import inspect

            if "models" in inspect.signature(module.run).parameters:
                kwargs["models"] = tuple(args.models)
        result = module.run(settings, **kwargs)
        print(result.format_table())
        print()
    return 0


def _bench(args: argparse.Namespace) -> int:
    from .perf import run_bench

    report = run_bench(
        num_requests=args.requests,
        models=tuple(args.models) if args.models else None,
        label=args.label,
        anneal_iterations=args.anneal_micro,
    )
    path = report.write(args.output)
    print(report.format_table())
    print(f"wrote {path}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "summary":
        return _print_summary(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "experiment":
        return _experiment(args)
    if args.command == "bench":
        return _bench(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
