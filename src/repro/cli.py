"""Command-line interface for the Ouroboros reproduction.

Four sub-commands cover the workflows a downstream user needs:

``summary``
    Build a deployment for a model and print its core/KV/pipeline summary.

``serve``
    Serve one of the paper's workloads on Ouroboros (and optionally the
    baselines) and print throughput, energy per token and the energy
    breakdown.  ``--arrival-rate R`` switches to open-loop serving: requests
    arrive as a Poisson process at R requests/s and the report adds TTFT and
    end-to-end latency percentiles.  ``--system`` serves on any registered
    system (``python -m repro serve llama-13b --system tpu-v4``).

``serve --daemon``
    Run the deployment as a live serving daemon instead of a batch run: an
    asyncio loop listening on a local TCP socket (``--listen HOST:PORT``,
    port 0 picks a free one) for the newline-delimited JSON protocol in
    :mod:`repro.serving.protocol`.  Requests feed the engine's admission
    queue as they land; draining a replayed spec trace reproduces the batch
    result bit for bit.  ``--checkpoint-on SIGTERM`` captures an engine
    checkpoint and exits cleanly on the signal; ``--daemon --resume FILE``
    continues from the written file.

``client``
    Talk to a running daemon: ``replay`` streams a spec's trace and drains
    (``--spawn`` boots a daemon subprocess first and shuts it down after),
    ``status`` / ``metrics`` query it, ``checkpoint`` / ``drain`` /
    ``shutdown`` control it.

``experiment``
    Regenerate one of the paper's figures (``fig01`` ... ``fig24``,
    ``headline`` or ``all``) and print the regenerated rows.  ``fig22``
    (open-loop arrival-rate sweep), ``fig23`` (multi-tenant SLO goodput
    vs. offered load) and ``fig24`` (scheduling-policy comparison under the
    fig23 sweep) go beyond the paper's own figures.

``bench``
    Time the headline experiments stage by stage (system build, serving,
    the comparison grid, the mapping annealer) and write a machine-readable
    JSON report so the repository keeps a perf trajectory across PRs.

``lint``
    Run the repo's static invariant checkers (:mod:`repro.analysis`):
    determinism of the serving path, serialization completeness of the
    spec/result dataclasses, fast-vs-scalar engine parity, knob plumbing
    and float-accumulation stability.  Exits nonzero on any finding not
    grandfathered by ``--baseline``; ``--json`` emits the structured
    report for tooling.

Every command describes its run as a :class:`repro.api.DeploymentSpec` and
executes it through the single :func:`repro.api.serve` entry point.

Examples::

    python -m repro summary llama-13b
    python -m repro serve llama-13b --workload lp128_ld2048 --requests 200 --baselines
    python -m repro serve llama-13b --arrival-rate 25 --requests 200
    python -m repro experiment fig11
    python -m repro experiment fig13 --requests 100 --models llama-13b
    python -m repro experiment fig22 --requests 100
    python -m repro experiment fig23 --requests 100
    python -m repro experiment fig24 --requests 100
    python -m repro experiment fig25 --requests 100
    python -m repro experiment fig26 --requests 100
    python -m repro serve llama-13b --fault-plan kv_core@0.5,stall@1.0:0:0.25
    python -m repro serve llama-13b --suspend-epoch 50 --checkpoint ckpt.json
    python -m repro serve llama-13b --resume ckpt.json
    python -m repro serve llama-13b --tune chunk_tokens=256 --tune context_quantum=128
    python -m repro serve llama-13b --spec saved_spec.json
    python -m repro serve llama-13b --daemon --listen 127.0.0.1:7431
    python -m repro serve llama-13b --daemon --checkpoint-on SIGTERM
    python -m repro client replay llama-13b --workload lp128_ld2048 --spawn
    python -m repro client status --connect 127.0.0.1:7431
    python -m repro serve llama-13b --requests 1000000 --arrival-rate 90 --stream
    python -m repro bench --output BENCH_PR10.json
    python -m repro lint --json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from dataclasses import replace
from pathlib import Path

from . import api
from .errors import ConfigurationError, ReproError
from .pipeline.engine import PipelineConfig
from .experiments import ALL_EXPERIMENTS, ExperimentSettings
from .experiments.common import (
    OUROBOROS_NAME,
    cell_deployments,
    normalized_energy,
    normalized_throughput,
)
from .models.architectures import MODEL_REGISTRY
from .workload.generator import PAPER_WORKLOADS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ouroboros wafer-scale CIM reproduction (ASPLOS'26)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summary = subparsers.add_parser("summary", help="print a deployment summary")
    summary.add_argument("model", choices=sorted(MODEL_REGISTRY))
    summary.add_argument("--system", choices=sorted(api.SYSTEM_REGISTRY),
                         default="ouroboros",
                         help="registered system to summarise")
    summary.add_argument("--anneal", type=int, default=50,
                         help="annealing iterations for the inter-core mapper")
    summary.add_argument("--wafers", type=int, default=None,
                         help="force a wafer count (default: smallest that fits)")

    serve = subparsers.add_parser("serve", help="serve a workload and report results")
    serve.add_argument("model", nargs="?", default=None,
                       choices=sorted(MODEL_REGISTRY),
                       help="model to serve (optional with --spec)")
    serve.add_argument("--spec", default=None, metavar="FILE",
                       help="serve a full DeploymentSpec JSON (as written by "
                            "spec.to_dict()); flag overrides still apply on top")
    serve.add_argument("--tune", action="append", default=[],
                       metavar="FIELD=VALUE",
                       help="override any PipelineConfig field by name, e.g. "
                            "--tune chunk_tokens=256 --tune max_epochs=500000 "
                            "(repeatable; values parse as JSON literals)")
    serve.add_argument("--tenant", action="append", default=[],
                       metavar="FIELD=VALUE[,...]",
                       help="add one tenant (repeatable): comma-separated "
                            "TenantSpec fields, e.g. --tenant name=chat,"
                            "workload=wikitext2,num_requests=200,"
                            "arrival_rate_per_s=8,weight=2,kv_quota=0.25 "
                            "(values parse as JSON literals)")
    serve.add_argument("--workload", choices=PAPER_WORKLOADS, default="wikitext2")
    serve.add_argument("--system", choices=sorted(api.SYSTEM_REGISTRY),
                       default="ouroboros",
                       help="registered system to serve on")
    serve.add_argument("--requests", type=int, default=200)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--kv-threshold", type=float, default=0.1)
    serve.add_argument("--arrival-rate", type=float, default=0.0,
                       help="open-loop Poisson arrival rate in requests/s "
                            "(0 = closed batch, all requests at t=0)")
    serve.add_argument("--policy", choices=sorted(api.POLICY_NAMES),
                       default="fcfs",
                       help="scheduler admission-order policy")
    serve.add_argument("--baselines", action="store_true",
                       help="also run the DGX/TPU/AttAcc/Cerebras baselines")
    serve.add_argument("--fault-plan", default=None, metavar="PLAN",
                       help="inject runtime faults: 'kind@time[:target[:dur]],...' "
                            "(kinds: kv_core, weight_core, kv_block, stall) or "
                            "@file.json with a saved plan")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       help="bound the admission queue; overflow is shed")
    serve.add_argument("--shed-deadline", action="store_true",
                       help="drop waiting requests whose TTFT SLO is unmeetable")
    serve.add_argument("--shed-headroom", type=float, default=0.0,
                       help="service-time slack (s) for deadline shedding")
    serve.add_argument("--shed-retries", type=int, default=0,
                       help="retries with backoff before a depth shed is permanent")
    serve.add_argument("--shed-backoff", type=float, default=0.0,
                       help="base retry backoff (s); doubles per further shed")
    serve.add_argument("--suspend-epoch", type=int, default=None, metavar="N",
                       help="suspend at epoch N and write a checkpoint "
                            "instead of finishing the run")
    serve.add_argument("--checkpoint", default="checkpoint.json", metavar="PATH",
                       help="path the suspended checkpoint is written to "
                            "(with --suspend-epoch)")
    serve.add_argument("--resume", default=None, metavar="PATH",
                       help="resume a run from a checkpoint written by "
                            "--suspend-epoch (the spec stored in the file "
                            "is used; the run finishes bit-for-bit equal to "
                            "an uninterrupted one); with --daemon, resume a "
                            "daemon checkpoint written by --checkpoint-on or "
                            "the protocol's checkpoint operation")
    serve.add_argument("--daemon", action="store_true",
                       help="run as a live serving daemon on a local socket "
                            "instead of a batch run")
    serve.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="daemon listen address (port 0 picks a free port; "
                            "default: %(default)s)")
    serve.add_argument("--checkpoint-on", action="append", default=[],
                       metavar="SIGNAME", dest="checkpoint_on",
                       help="checkpoint-and-exit gracefully on this signal "
                            "(e.g. SIGTERM; repeatable; daemon mode only)")
    serve.add_argument("--window", type=float, default=60.0,
                       help="rolling telemetry window in simulated seconds "
                            "(daemon mode; default: %(default)s)")
    serve.add_argument("--stream", action="store_true",
                       help="pull requests from a lazy arrival stream instead "
                            "of materialising the trace (identical results, "
                            "O(active) memory; engaged automatically at "
                            f"{api.STREAMING_AUTO_THRESHOLD:,}+ requests)")

    client = subparsers.add_parser(
        "client", help="talk to a live serving daemon"
    )
    client.add_argument("action",
                        choices=["replay", "status", "metrics", "checkpoint",
                                 "drain", "shutdown"],
                        help="operation to perform against the daemon")
    client.add_argument("model", nargs="?", default=None,
                        choices=sorted(MODEL_REGISTRY),
                        help="model whose trace to replay (replay action)")
    client.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="address of a running daemon")
    client.add_argument("--spawn", action="store_true",
                        help="boot a daemon subprocess for this replay and "
                             "shut it down afterwards (replay action only)")
    client.add_argument("--spec", default=None, metavar="FILE",
                        help="replay a full DeploymentSpec JSON instead of "
                             "model/--workload flags")
    client.add_argument("--workload", choices=PAPER_WORKLOADS,
                        default="wikitext2")
    client.add_argument("--requests", type=int, default=200)
    client.add_argument("--seed", type=int, default=0)
    client.add_argument("--arrival-rate", type=float, default=0.0)
    client.add_argument("--policy", choices=sorted(api.POLICY_NAMES),
                        default="fcfs")
    client.add_argument("--path", default=None, metavar="FILE",
                        help="checkpoint file path (checkpoint action)")
    client.add_argument("--stop", action="store_true",
                        help="stop the engine after checkpointing")
    client.add_argument("--json", action="store_true",
                        help="print the raw reply as JSON")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    experiment.add_argument(
        "figure", choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="figure to regenerate (or 'all')",
    )
    experiment.add_argument("--requests", type=int, default=150)
    experiment.add_argument("--anneal", type=int, default=50)
    experiment.add_argument("--models", nargs="*", default=None,
                            help="restrict to these models where supported")

    bench = subparsers.add_parser(
        "bench", help="time the headline experiments and emit a JSON report"
    )
    bench.add_argument("--requests", type=int, default=150,
                       help="requests per workload (the paper uses 1000)")
    bench.add_argument("--stream-requests", type=int, default=None,
                       help="requests for the streaming-scale stage (default: "
                            "$REPRO_BENCH_STREAM_REQUESTS or 20000; the "
                            "headline run uses 1000000)")
    bench.add_argument("--output", default="BENCH_PR10.json",
                       help="path of the JSON report (default: BENCH_PR10.json)")
    bench.add_argument("--models", nargs="*", default=None,
                       help="restrict the grid to these models")
    bench.add_argument("--label", default="headline",
                       help="label recorded in the report")
    bench.add_argument("--anneal-micro", type=int, default=500,
                       help="iterations for the annealer microbenchmark")

    lint = subparsers.add_parser(
        "lint", help="run the static invariant checkers over the source tree"
    )
    lint.add_argument("root", nargs="?", default=None,
                      help="directory (or single file) to lint "
                           "(default: the repro package itself)")
    lint.add_argument("--json", action="store_true",
                      help="emit the structured finding report as JSON")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="baseline file grandfathering known findings "
                           "(each entry needs a one-line justification)")
    return parser


def _print_summary(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(anneal_iterations=args.anneal)
    spec = settings.deployment(args.model, "wikitext2", system=args.system)
    if args.wafers is not None:
        spec = replace(
            spec,
            config=replace(spec.config, num_wafers=args.wafers),
            auto_scale_wafers=False,
        )
    system = api.build_deployment(spec)
    print(f"{api.resolve_model(spec.model)}")
    for key, value in system.summary().items():
        if isinstance(value, float):
            print(f"  {key:>16}: {value:,.2f}")
        else:
            print(f"  {key:>16}: {value}")
    return 0


def _print_result_row(name: str, result, reference=None) -> None:
    speedup = ""
    if reference is not None and reference.throughput_tokens_per_s > 0:
        speedup = f"{result.throughput_tokens_per_s / reference.throughput_tokens_per_s:7.2f}x"
    print(
        f"  {name:<16} {result.throughput_tokens_per_s:>14,.0f} tok/s "
        f"{result.energy_per_output_token_j * 1e3:>10.3f} mJ/tok {speedup}"
    )


def _parse_fault_plan(text: str) -> api.FaultPlan:
    """Parse ``--fault-plan``: compact event syntax, or ``@file.json``."""
    if text.startswith("@"):
        path = Path(text[1:])
        if not path.exists():
            raise ConfigurationError(f"fault-plan file '{path}' does not exist")
        return api.FaultPlan.from_dict(json.loads(path.read_text()))
    return api.FaultPlan.parse(text)


def _parse_literal(raw: str):
    """Parse a ``--tune`` value: JSON literal, bare string, none/true/false."""
    lowered = raw.lower()
    if lowered in ("none", "null"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _tune_overrides(entries: Sequence[str]) -> dict:
    """Parse repeated ``--tune FIELD=VALUE`` flags against PipelineConfig.

    Driven by ``dataclasses.fields(PipelineConfig)`` so every engine knob —
    present and future — is reachable from the CLI without growing a
    dedicated flag (the ``repro lint`` knob checker relies on this).
    """
    from dataclasses import fields as dataclass_fields

    valid = {f.name for f in dataclass_fields(PipelineConfig)}
    overrides: dict = {}
    for entry in entries:
        name, sep, raw = entry.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ConfigurationError(
                f"--tune expects FIELD=VALUE, got '{entry}'"
            )
        if name not in valid:
            raise ConfigurationError(
                f"--tune: PipelineConfig has no field '{name}' "
                f"(valid: {', '.join(sorted(valid))})"
            )
        overrides[name] = _parse_literal(raw.strip())
    return overrides


def _tenant_specs(entries: Sequence[str]) -> tuple:
    """Parse repeated ``--tenant FIELD=VALUE[,...]`` flags into TenantSpecs.

    Driven by ``dataclasses.fields(TenantSpec)`` so every tenant knob —
    the policy weight/priority, ``kv_quota``, present and future fields —
    is reachable from the CLI without growing dedicated flags (the
    ``repro lint`` knob checker relies on this).
    """
    from dataclasses import fields as dataclass_fields

    valid = {f.name for f in dataclass_fields(api.TenantSpec)}
    tenants = []
    for entry in entries:
        values: dict = {}
        for item in entry.split(","):
            name, sep, raw = item.partition("=")
            name = name.strip()
            if not sep or not name:
                raise ConfigurationError(
                    f"--tenant expects FIELD=VALUE[,...], got '{item}'"
                )
            if name not in valid:
                raise ConfigurationError(
                    f"--tenant: TenantSpec has no field '{name}' "
                    f"(valid: {', '.join(sorted(valid))})"
                )
            values[name] = _parse_literal(raw.strip())
        if isinstance(values.get("slo"), dict):
            values["slo"] = api.SLOTarget(**values["slo"])
        if "name" not in values or "workload" not in values:
            raise ConfigurationError(
                "--tenant needs at least name=... and workload=..."
            )
        tenants.append(api.TenantSpec(**values))
    return tuple(tenants)


def _apply_serve_overrides(spec, args: argparse.Namespace):
    """Fold the fault/shedding/tuning flags into a serve spec."""
    if args.tenant:
        spec = replace(spec, tenants=_tenant_specs(args.tenant))
    if args.fault_plan:
        spec = replace(spec, faults=_parse_fault_plan(args.fault_plan))
    shedding = (
        args.max_queue_depth is not None
        or args.shed_deadline
        or args.shed_retries
        or args.shed_backoff
        or args.shed_headroom
    )
    if shedding:
        pipeline = replace(
            spec.config.pipeline,
            max_queue_depth=args.max_queue_depth,
            shed_deadline=args.shed_deadline,
            shed_headroom_s=args.shed_headroom,
            shed_retries=args.shed_retries,
            shed_backoff_s=args.shed_backoff,
        )
        spec = replace(spec, config=replace(spec.config, pipeline=pipeline))
    tuned = _tune_overrides(args.tune)
    if tuned:
        pipeline = replace(spec.config.pipeline, **tuned)
        spec = replace(spec, config=replace(spec.config, pipeline=pipeline))
    return spec


def _resume_serve(args: argparse.Namespace) -> int:
    """Finish a run suspended by ``--suspend-epoch``."""
    path = Path(args.resume)
    if not path.exists():
        raise ConfigurationError(f"checkpoint file '{path}' does not exist")
    data = json.loads(path.read_text())
    spec = api.DeploymentSpec.from_dict(data["spec"])
    if args.model is not None and spec.model != args.model:
        raise ConfigurationError(
            f"checkpoint '{path}' was taken serving {spec.model}, not "
            f"{args.model}; pass the matching model"
        )
    checkpoint = api.EngineCheckpoint.from_dict(data["checkpoint"])
    result = api.serve(
        spec,
        resume_from=checkpoint,
        streaming=True if args.stream else None,
    )
    print(f"Resumed {spec.model} from '{path}' "
          f"(epoch {checkpoint.next_epoch_index})")
    _print_result_row(result.system, result)
    _print_robustness(result)
    return 0


def _parse_address(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` flag value."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"expected HOST:PORT, got '{text}' (e.g. 127.0.0.1:7431)"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise ConfigurationError(f"invalid port in '{text}'") from exc


def _serve_daemon(args: argparse.Namespace, spec=None) -> int:
    """Run the live serving daemon (``serve --daemon``) to completion."""
    from .serving import ServingDaemon, load_daemon_checkpoint

    host, port = _parse_address(args.listen)
    resume_payload = None
    if args.resume:
        path = Path(args.resume)
        if not path.exists():
            raise ConfigurationError(f"checkpoint file '{path}' does not exist")
        resume_payload = load_daemon_checkpoint(path)
        spec = api.DeploymentSpec.from_dict(resume_payload["spec"])
        print(f"Resuming daemon from '{path}'")
    assert spec is not None
    daemon = ServingDaemon(
        spec,
        host=host,
        port=port,
        window_s=args.window,
        checkpoint_path=args.checkpoint,
        checkpoint_signals=tuple(args.checkpoint_on),
        resume_payload=resume_payload,
        announce=print,
    )
    daemon.run()
    if daemon.result is not None:
        print("Drained; final results:")
        _print_result_row(daemon.result.system, daemon.result)
        _print_robustness(daemon.result)
        return 0
    if daemon.stop_checkpoint is not None:
        return 0  # the checkpoint-and-stop path already announced the file
    if daemon.error is not None:
        print(f"error: {daemon.error}", file=sys.stderr)
        return 1
    return 0


def _client_spec(args: argparse.Namespace):
    """The deployment spec a ``client replay`` streams into the daemon."""
    if args.spec:
        spec_path = Path(args.spec)
        if not spec_path.exists():
            raise ConfigurationError(f"spec file '{spec_path}' does not exist")
        return api.DeploymentSpec.from_dict(json.loads(spec_path.read_text()))
    if args.model is None:
        raise ConfigurationError("client replay needs a model (or --spec FILE)")
    settings = ExperimentSettings(
        num_requests=args.requests,
        seed=args.seed,
        arrival_rate_per_s=args.arrival_rate,
        scheduling_policy=args.policy,
    )
    return settings.deployment(args.model, args.workload)


def _print_replay_result(result: dict, args: argparse.Namespace) -> None:
    if args.json:
        print(json.dumps(result, indent=2))
        return
    print(
        f"  {result['system']:<16} {result['throughput_tokens_per_s']:>14,.0f} "
        f"tok/s {result['energy_per_output_token_j'] * 1e3:>10.3f} mJ/tok"
    )
    if result.get("shed_requests"):
        print(f"  shed requests: {result['shed_requests']}")


def _spawn_daemon(spec):
    """Boot a ``repro serve --daemon`` subprocess and wait for its address.

    Returns ``(process, host, port)`` once the child announces where it
    listens.
    """
    import os
    import subprocess
    import tempfile

    spec_file = tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", prefix="repro-spec-", delete=False
    )
    with spec_file:
        json.dump(spec.to_dict(), spec_file)
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--spec", spec_file.name,
         "--daemon", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            process.wait()
            raise ConfigurationError(
                f"spawned daemon exited (code {process.returncode}) before "
                "announcing its address"
            )
        if "listening on " in line:
            host, port = _parse_address(line.rsplit("listening on ", 1)[1].strip())
            return process, host, port


def _client(args: argparse.Namespace) -> int:
    from .serving import DaemonClient, replay_spec

    if args.spawn and args.action != "replay":
        raise ConfigurationError("--spawn only applies to the replay action")
    if args.action == "replay":
        spec = _client_spec(args)
        spec.validate()
        if args.spawn:
            process, host, port = _spawn_daemon(spec)
            try:
                result = replay_spec(spec, host, port, shutdown=True)
            finally:
                process.stdout.read()  # drain so the child can exit cleanly
                process.wait()
            _print_replay_result(result, args)
            return 0
        if not args.connect:
            raise ConfigurationError("client replay needs --connect (or --spawn)")
        host, port = _parse_address(args.connect)
        result = replay_spec(spec, host, port)
        _print_replay_result(result, args)
        return 0
    if not args.connect:
        raise ConfigurationError(f"client {args.action} needs --connect HOST:PORT")
    host, port = _parse_address(args.connect)
    with DaemonClient(host, port) as client:
        if args.action == "status":
            payload = client.status()
        elif args.action == "metrics":
            payload = client.metrics()
        elif args.action == "checkpoint":
            payload = client.checkpoint(args.path, stop=args.stop)
        elif args.action == "drain":
            result = client.drain()
            _print_replay_result(result, args)
            return 0
        else:
            client.shutdown()
            payload = {"shutdown": True}
    print(json.dumps(payload, indent=2))
    return 0


def _print_robustness(result) -> None:
    """One line each for shed/fault accounting, when the run had any."""
    if result.shed_requests:
        print(f"  shed requests: {result.shed_requests}")
    if result.faults is not None:
        stats = result.faults
        print(
            f"  faults injected: {stats.injected} "
            f"(recovered {stats.recovered_sequences} seqs, "
            f"{stats.recompute_tokens} recompute tokens, "
            f"{stats.recovery_latency_s * 1e3:.3f} ms recovery, "
            f"{stats.stall_time_s * 1e3:.3f} ms stalled)"
        )


def _serve(args: argparse.Namespace) -> int:
    robustness_flags = (
        args.fault_plan or args.suspend_epoch is not None or args.resume
    )
    if args.baselines and robustness_flags:
        raise ConfigurationError(
            "--baselines cannot combine with --fault-plan/--suspend-epoch/"
            "--resume: the analytical baselines have no runtime to fault or "
            "checkpoint"
        )
    if args.baselines and args.spec:
        raise ConfigurationError(
            "--spec cannot combine with --baselines: the spec file already "
            "names its system"
        )
    if args.daemon and (args.baselines or args.suspend_epoch is not None):
        raise ConfigurationError(
            "--daemon cannot combine with --baselines or --suspend-epoch "
            "(use the protocol's checkpoint operation or --checkpoint-on)"
        )
    if args.stream and (args.baselines or args.daemon):
        raise ConfigurationError(
            "--stream cannot combine with --baselines or --daemon: the "
            "analytical baselines consume the whole trace at once, and the "
            "daemon already ingests requests lazily"
        )
    if args.resume:
        return _serve_daemon(args) if args.daemon else _resume_serve(args)
    if args.model is None and not args.spec:
        raise ConfigurationError("serve needs a model (or --spec FILE)")
    settings = ExperimentSettings(
        num_requests=args.requests,
        seed=args.seed,
        kv_threshold=args.kv_threshold,
        arrival_rate_per_s=args.arrival_rate,
        scheduling_policy=args.policy,
    )
    try:
        if args.spec:
            spec_path = Path(args.spec)
            if not spec_path.exists():
                raise ConfigurationError(
                    f"spec file '{spec_path}' does not exist"
                )
            spec = api.DeploymentSpec.from_dict(
                json.loads(spec_path.read_text())
            )
            if args.model is not None and spec.model != args.model:
                raise ConfigurationError(
                    f"spec file '{spec_path}' describes {spec.model}, not "
                    f"{args.model}; drop the model argument or pass the "
                    "matching one"
                )
            specs = [spec]
        elif args.baselines:
            specs = cell_deployments(args.model, args.workload, settings)
        else:
            specs = [settings.deployment(args.model, args.workload, system=args.system)]
        specs = [_apply_serve_overrides(spec, args) for spec in specs]
        for spec in specs:
            spec.validate()
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.daemon:
        return _serve_daemon(args, specs[0])
    if args.suspend_epoch is not None:
        outcome = api.serve(
            specs[0],
            suspend_at_epoch=args.suspend_epoch,
            streaming=True if args.stream else None,
        )
        if isinstance(outcome, api.EngineCheckpoint):
            payload = {"spec": specs[0].to_dict(), "checkpoint": outcome.as_dict()}
            Path(args.checkpoint).write_text(json.dumps(payload))
            print(
                f"Suspended at epoch {outcome.next_epoch_index} "
                f"(t={outcome.time_s * 1e3:.3f} ms); checkpoint written to "
                f"'{args.checkpoint}'. Resume with: repro serve "
                f"{args.model} --resume {args.checkpoint}"
            )
            return 0
        # The trace drained before the suspend epoch: report normally.
        print(f"Run finished before epoch {args.suspend_epoch}; no checkpoint written")
        _print_result_row(outcome.system, outcome)
        _print_robustness(outcome)
        return 0
    primary = specs[0]
    arch = api.resolve_model(primary.model)
    rate = primary.arrival_rate_per_s
    mode = f"open-loop at {rate:g} req/s" if rate > 0 else "batch"
    print(
        f"Serving {primary.num_requests} '{primary.workload}' requests of "
        f"{arch.name} ({mode})"
    )
    if args.baselines:
        results = {}
        for spec in specs:
            try:
                result = api.serve(spec)
            except ConfigurationError:
                continue
            key = OUROBOROS_NAME if spec.system == "ouroboros" else result.system
            results[key] = result
        reference = results["DGX A100"]
        for name, result in results.items():
            _print_result_row(name, result, reference)
        print("\n  normalized throughput:", {
            k: round(v, 2) for k, v in normalized_throughput(results).items()
        })
        print("  normalized energy:    ", {
            k: round(v, 2) for k, v in normalized_energy(results).items()
        })
    else:
        result = api.serve(specs[0], streaming=True if args.stream else None)
        _print_result_row(result.system, result)
        print("  energy breakdown:", {
            k: f"{v:.1%}" for k, v in result.energy.fractions().items()
        })
        print(f"  utilization: {result.utilization:.1%}  evictions: {result.evictions}")
        _print_robustness(result)
        if rate > 0:
            print(
                f"  TTFT p50/p95: {result.ttft.p50_s * 1e3:.1f}/"
                f"{result.ttft.p95_s * 1e3:.1f} ms  "
                f"latency p50/p95/p99: {result.latency.p50_s * 1e3:.1f}/"
                f"{result.latency.p95_s * 1e3:.1f}/"
                f"{result.latency.p99_s * 1e3:.1f} ms"
            )
    return 0


def _experiment(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(
        num_requests=args.requests, anneal_iterations=args.anneal
    )
    figures = sorted(ALL_EXPERIMENTS) if args.figure == "all" else [args.figure]
    for figure in figures:
        module = ALL_EXPERIMENTS[figure]
        kwargs = {}
        if args.models and hasattr(module, "run"):
            # Pass a model restriction only to drivers that accept it.
            import inspect

            if "models" in inspect.signature(module.run).parameters:
                kwargs["models"] = tuple(args.models)
        result = module.run(settings, **kwargs)
        print(result.format_table())
        print()
    return 0


def _bench(args: argparse.Namespace) -> int:
    from .perf import run_bench

    report = run_bench(
        num_requests=args.requests,
        models=tuple(args.models) if args.models else None,
        label=args.label,
        anneal_iterations=args.anneal_micro,
        stream_requests=args.stream_requests,
    )
    path = report.write(args.output)
    print(report.format_table())
    print(f"wrote {path}")
    return 0


def _lint(args: argparse.Namespace) -> int:
    from . import analysis

    root = Path(args.root) if args.root else Path(__file__).resolve().parent
    report = analysis.run_lint(root, baseline_path=args.baseline)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summary":
            return _print_summary(args)
        if args.command == "serve":
            return _serve(args)
        if args.command == "client":
            return _client(args)
        if args.command == "experiment":
            return _experiment(args)
        if args.command == "bench":
            return _bench(args)
        if args.command == "lint":
            return _lint(args)
    except ReproError as error:
        # Library errors are user-facing configuration/usage problems: report
        # them as one clean line on stderr, not a traceback (exit code 2,
        # matching argparse's own usage-error convention).
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
