"""Benchmark harness: time the headline experiments, emit machine-readable JSON.

``repro bench`` (or ``scripts/bench.sh``) times the serving simulator stage by
stage -- system build (mapping + KV setup) per model, trace serving per
workload (closed batch plus one open-loop arrival-driven run at the measured
saturation rate), a multi-tenant SLO-goodput serve (the fig23 shape: two
tenants, sub-epoch admission, per-tenant goodput accounting) under both the
FCFS and WFQ scheduling policies, a fault-recovery serve (the fig25 shape:
overloaded arrivals under a deterministic fault plan, with and without
overload shedding), a preemptive-scheduling serve (the fig26 shape: the
weighted tenant mix at 4x saturation under a batch cap, served with the wfq
preemption knob off and on), a live daemon replay of the open-loop run (booting a real
``ServingDaemon`` and streaming the trace over its socket protocol, with a
bitwise batch-parity headline), the full headline comparison grid, a
mapping-annealer microbenchmark, and a streaming-scale serve (the trace pulled
lazily from a request stream, with a simulated-requests-per-wall-clock-second
headline and a peak-RSS bound) -- and writes the measurements to a JSON file
(``BENCH_PR10.json`` by default).  Future PRs append their own reports, so the
repository carries its performance trajectory alongside the code;
``scripts/check_bench_regression.py`` gates CI on the deterministic headline
metrics staying bit-for-bit on trajectory.

Runs are described as :class:`repro.api.DeploymentSpec` objects and built
through the system registry.  The harness measures *cold* numbers: every
stage builds its own systems (bypassing the api build memo) and the sweep
result cache is disabled, so the report reflects simulator speed, not cache
hits.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path


@dataclass
class BenchReport:
    """Per-stage wall-clock timings of one benchmark run."""

    label: str
    num_requests: int
    #: stage name -> seconds (flat, machine-readable)
    timings_s: dict[str, float] = field(default_factory=dict)
    #: contextual metadata (python version, platform, cpu count, settings)
    meta: dict[str, object] = field(default_factory=dict)
    #: headline figures of merit measured during the grid stage
    headline: dict[str, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return sum(self.timings_s.values())

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["total_s"] = self.total_s
        return payload

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def format_table(self) -> str:
        lines = [f"benchmark '{self.label}' ({self.num_requests} requests/workload)"]
        width = max(len(name) for name in self.timings_s) if self.timings_s else 10
        for name, seconds in self.timings_s.items():
            lines.append(f"  {name:<{width}} {seconds:9.3f} s")
        lines.append(f"  {'TOTAL':<{width}} {self.total_s:9.3f} s")
        for name, value in self.headline.items():
            lines.append(f"  headline.{name}: {value:.3f}")
        return "\n".join(lines)


def run_bench(
    num_requests: int = 150,
    models: tuple[str, ...] | None = None,
    label: str = "headline",
    anneal_iterations: int = 500,
    stream_requests: int | None = None,
) -> BenchReport:
    """Time the headline experiment pipeline stage by stage.

    ``stream_requests`` sizes the streaming-scale stage (stage 5); ``None``
    falls back to ``$REPRO_BENCH_STREAM_REQUESTS``, then 20000.  The headline
    1M-request run sets it to 1000000.
    """
    import os

    from .. import api
    from ..experiments import headline
    from ..experiments.common import (
        DECODER_MODELS,
        PAPER_WORKLOAD_ORDER,
        ExperimentSettings,
    )
    from ..hardware.wafer import Wafer
    from ..mapping.intercore import map_model

    models = tuple(models) if models else DECODER_MODELS
    settings = ExperimentSettings(num_requests=num_requests)
    report = BenchReport(
        label=label,
        num_requests=num_requests,
        meta={
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "models": list(models),
            "anneal_iterations_sweep": settings.anneal_iterations,
            "anneal_iterations_micro": anneal_iterations,
        },
    )

    # Stage 1: system build (defect sampling + mapping + KV setup) per model.
    # `cache=False` keeps the numbers cold (no api build memoisation).
    for model in models:
        spec = settings.deployment(model, PAPER_WORKLOAD_ORDER[0])
        start = time.perf_counter()
        system = api.build_deployment(spec, cache=False)
        system.built
        report.timings_s[f"build.{model}"] = time.perf_counter() - start

    # Stage 2: serving each paper workload on the first model.
    system = api.build_deployment(
        settings.deployment(models[0], PAPER_WORKLOAD_ORDER[0]), cache=False
    )
    system.built
    first_batch_result = None
    for workload in PAPER_WORKLOAD_ORDER:
        trace = api.trace_for(settings.deployment(models[0], workload))
        start = time.perf_counter()
        result = system.serve(trace, workload_name=workload)
        report.timings_s[f"serve.{models[0]}.{workload}"] = time.perf_counter() - start
        if first_batch_result is None:
            first_batch_result = result

    # Stage 2b: open-loop (arrival-time-driven) serving of the first workload
    # at the saturation rate measured by the closed-batch run above.
    workload = PAPER_WORKLOAD_ORDER[0]
    rate = num_requests / first_batch_result.total_time_s
    open_loop_settings = replace(settings, arrival_rate_per_s=rate)
    trace = api.trace_for(open_loop_settings.deployment(models[0], workload))
    start = time.perf_counter()
    open_result = system.serve(trace, workload_name=workload)
    report.timings_s[f"serve_open_loop.{models[0]}.{workload}"] = (
        time.perf_counter() - start
    )
    report.meta["open_loop_arrival_rate_per_s"] = rate
    report.headline["open_loop_ttft_p95_s"] = open_result.ttft.p95_s
    report.headline["open_loop_latency_p99_s"] = open_result.latency.p99_s

    # Stage 2c: multi-tenant SLO serving (the fig23 shape) on the first
    # model -- two tenants with independent arrival processes at the measured
    # saturation rate, a TTFT/latency SLO, and sub-epoch admission splitting
    # epochs at arrival boundaries.
    from ..api import SLOTarget
    from ..experiments.fig23_slo_goodput import default_tenants

    tenants = default_tenants(num_requests)
    total = sum(tenant.num_requests for tenant in tenants)
    slo_settings = replace(
        settings,
        tenants=tuple(
            replace(
                tenant,
                arrival_rate_per_s=rate * (tenant.num_requests / total),
            )
            for tenant in tenants
        ),
        slo=SLOTarget(
            ttft_s=open_result.ttft.p95_s or 1.0,
            latency_s=open_result.latency.p99_s or 10.0,
            goodput_target=0.95,
        ),
    )
    trace = api.trace_for(slo_settings.deployment(models[0], workload))
    start = time.perf_counter()
    slo_result = system.serve(trace, workload_name="multi-tenant-slo")
    report.timings_s[f"serve_slo_multi_tenant.{models[0]}"] = (
        time.perf_counter() - start
    )
    report.headline["slo_goodput"] = float(slo_result.goodput or 0.0)
    for name, stats in slo_result.tenants.items():
        report.headline[f"slo_goodput_{name}"] = float(stats.goodput or 0.0)
    report.headline["slo_interactive_ttft_p95_s"] = (
        slo_result.tenants["interactive"].ttft.p95_s
    )
    report.meta["slo_split_epochs"] = slo_result.extra.get("split_epochs", 0)

    # Stage 2d: the same multi-tenant SLO trace under weighted fair queueing
    # (the wfq scheduling policy lives in the pipeline config, so this builds
    # its own system; the trace is identical to stage 2c's).
    wfq_settings = replace(slo_settings, scheduling_policy="wfq")
    wfq_system = api.build_deployment(
        wfq_settings.deployment(models[0], workload), cache=False
    )
    wfq_system.built
    trace = api.trace_for(wfq_settings.deployment(models[0], workload))
    start = time.perf_counter()
    wfq_result = wfq_system.serve(trace, workload_name="multi-tenant-slo-wfq")
    report.timings_s[f"serve_slo_wfq.{models[0]}"] = time.perf_counter() - start
    report.headline["slo_wfq_goodput"] = float(wfq_result.goodput or 0.0)
    report.headline["slo_wfq_interactive_ttft_p95_s"] = (
        wfq_result.tenants["interactive"].ttft.p95_s
    )

    # Stage 2e: fault-tolerant serving under overload -- the fig25 shape.  The
    # stage-2c tenant mix is offered at 4x the measured saturation rate while
    # a deterministic fault plan fails cores, destroys KV blocks and stalls
    # admission; the trace is served twice, without shedding and with
    # deadline-aware early rejection, so the report carries both sides of the
    # graceful-degradation comparison.
    from ..sim.faults import make_fault_plan

    fault_slo = slo_settings.slo
    overload = 4.0
    fault_settings = replace(
        slo_settings,
        tenants=tuple(
            replace(
                tenant,
                arrival_rate_per_s=overload * rate * (tenant.num_requests / total),
            )
            for tenant in tenants
        ),
    )
    horizon_s = total / (overload * rate)
    fault_plan = make_fault_plan(
        4.0 / horizon_s,
        horizon_s,
        kinds=("kv_block", "stall", "kv_core", "weight_core"),
        stall_duration_s=0.5 * fault_slo.ttft_s,
    )
    trace = api.trace_for(fault_settings.deployment(models[0], workload))
    start = time.perf_counter()
    no_shed_result = system.serve(
        trace, workload_name="fault-recovery", fault_plan=fault_plan
    )
    report.timings_s[f"serve_faults.{models[0]}"] = time.perf_counter() - start

    shed_settings = replace(
        fault_settings,
        shed_deadline=True,
        shed_headroom_s=0.4 * fault_slo.ttft_s,
    )
    shed_system = api.build_deployment(
        shed_settings.deployment(models[0], workload), cache=False
    )
    shed_system.built
    trace = api.trace_for(shed_settings.deployment(models[0], workload))
    start = time.perf_counter()
    shed_result = shed_system.serve(
        trace, workload_name="fault-recovery-shed", fault_plan=fault_plan
    )
    report.timings_s[f"serve_faults_shed.{models[0]}"] = time.perf_counter() - start
    fault_stats = shed_result.faults
    report.headline["fault_goodput_no_shed"] = float(no_shed_result.goodput or 0.0)
    report.headline["fault_goodput_shed"] = float(shed_result.goodput or 0.0)
    report.headline["fault_ttft_p95_no_shed_s"] = no_shed_result.ttft.p95_s
    report.headline["fault_ttft_p95_shed_s"] = shed_result.ttft.p95_s
    report.headline["fault_shed_requests"] = float(shed_result.shed_requests)
    report.headline["fault_injected"] = float(fault_stats.injected)
    report.headline["fault_recovered_sequences"] = float(
        fault_stats.recovered_sequences
    )
    report.headline["fault_recompute_tokens"] = float(fault_stats.recompute_tokens)

    # Stage 2f: live daemon replay of the stage-2b open-loop deployment.  A
    # real ServingDaemon is booted on a background thread, the spec's trace is
    # streamed in over the socket protocol and drained; the timing covers the
    # whole round trip (build + ingestion + serving + protocol).  The headline
    # records the replayed tail latencies plus a bitwise batch-parity
    # indicator -- the daemon must reproduce the stage-2b numbers exactly.
    from ..serving import serve_via_daemon

    daemon_spec = open_loop_settings.deployment(models[0], workload)
    start = time.perf_counter()
    daemon_result = serve_via_daemon(daemon_spec)
    report.timings_s[f"serve_daemon_replay.{models[0]}.{workload}"] = (
        time.perf_counter() - start
    )
    daemon_matches = (
        daemon_result["total_time_s"] == open_result.total_time_s
        and daemon_result["total_tokens"] == open_result.total_tokens
        and daemon_result["output_tokens"] == open_result.output_tokens
        and daemon_result["ttft"] == open_result.ttft.as_dict()
        and daemon_result["latency"] == open_result.latency.as_dict()
        and daemon_result["energy"] == open_result.energy.as_dict()
    )
    report.headline["daemon_replay_ttft_p95_s"] = daemon_result["ttft"]["p95_s"]
    report.headline["daemon_replay_latency_p99_s"] = (
        daemon_result["latency"]["p99_s"]
    )
    report.headline["daemon_replay_total_time_s"] = daemon_result["total_time_s"]
    report.headline["daemon_replay_matches_batch"] = 1.0 if daemon_matches else 0.0

    # Stage 2g: preemptive scheduling under overload -- the fig26 shape.  The
    # stage-2c tenant mix (interactive tenant carrying a wfq weight) is
    # offered at 4x the measured saturation rate under a continuous-batching
    # cap and served twice through the wfq scheduler, preemption off and on;
    # the headline carries the interactive TTFT-p95 cut preemption buys and
    # the recompute tax (preemptions, recomputed tokens) it pays for it.
    preempt_base = replace(
        slo_settings,
        tenants=tuple(
            replace(
                tenant,
                weight=8.0 if tenant.name == "interactive" else 1.0,
                arrival_rate_per_s=overload * rate * (tenant.num_requests / total),
            )
            for tenant in tenants
        ),
        scheduling_policy="wfq",
        max_active_sequences=8,
    )
    preempt_results = {}
    for preemptive in (False, True):
        preempt_settings = replace(preempt_base, preemptive=preemptive)
        preempt_system = api.build_deployment(
            preempt_settings.deployment(models[0], workload), cache=False
        )
        preempt_system.built
        trace = api.trace_for(preempt_settings.deployment(models[0], workload))
        suffix = "on" if preemptive else "off"
        start = time.perf_counter()
        preempt_results[preemptive] = preempt_system.serve(
            trace, workload_name=f"preempt-{suffix}"
        )
        report.timings_s[f"serve_preempt_{suffix}.{models[0]}"] = (
            time.perf_counter() - start
        )
    preempt_off, preempt_on = preempt_results[False], preempt_results[True]
    report.headline["preempt_off_interactive_ttft_p95_s"] = (
        preempt_off.tenants["interactive"].ttft.p95_s
    )
    report.headline["preempt_interactive_ttft_p95_s"] = (
        preempt_on.tenants["interactive"].ttft.p95_s
    )
    report.headline["preempt_off_goodput"] = float(preempt_off.goodput or 0.0)
    report.headline["preempt_goodput"] = float(preempt_on.goodput or 0.0)
    report.headline["preempt_preemptions"] = float(
        sum(stats.preemptions for stats in preempt_on.tenants.values())
    )
    report.headline["preempt_recomputed_tokens"] = float(
        sum(stats.recomputed_tokens for stats in preempt_on.tenants.values())
    )

    # Stage 3: the full headline grid (models x workloads x all systems).
    start = time.perf_counter()
    result = headline.run(settings, models=models)
    report.timings_s["headline_grid"] = time.perf_counter() - start
    report.headline.update({
        "average_speedup": result.average_speedup,
        "peak_speedup": result.peak_speedup,
        "average_efficiency_gain": result.average_efficiency_gain,
        "peak_efficiency_gain": result.peak_efficiency_gain,
    })

    # Stage 4: mapping-annealer microbenchmark (incremental delta evaluation).
    arch = api.resolve_model(models[0])
    wafer = Wafer(settings.system_config().wafer)
    start = time.perf_counter()
    map_model(arch, wafer, anneal_iterations=anneal_iterations)
    report.timings_s[f"mapping_anneal_{anneal_iterations}"] = time.perf_counter() - start

    # Stage 5: streaming-scale serving -- the requests-per-second headline.
    # An open-loop single-tenant run at the stage-2b saturation rate, but with
    # the trace pulled lazily from a request stream (O(active) memory), sized
    # by `stream_requests` (20k in CI, 1M for the headline run).  The figure
    # of merit is *simulated requests per wall-clock second*; peak RSS is the
    # process-wide `ru_maxrss` high-water mark -- a bound, not a per-stage
    # measurement, but one an O(trace) regression at 1M requests would blow
    # through immediately.
    import resource

    if stream_requests is None:
        stream_requests = int(os.environ.get("REPRO_BENCH_STREAM_REQUESTS", "20000"))
    stream_settings = replace(open_loop_settings, num_requests=stream_requests)
    stream_trace = api.stream_for(stream_settings.deployment(models[0], workload))
    start = time.perf_counter()
    stream_result = system.serve(stream_trace, workload_name="stream-scale")
    stream_elapsed = time.perf_counter() - start
    report.timings_s[f"serve_stream.{models[0]}.{workload}"] = stream_elapsed
    report.meta["stream_requests"] = stream_requests
    report.meta["stream_arrival_rate_per_s"] = rate
    report.headline["stream_requests_per_s"] = stream_requests / stream_elapsed
    report.headline["stream_peak_rss_mb"] = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    )
    report.headline["stream_sim_total_time_s"] = stream_result.total_time_s
    report.headline["stream_sim_output_tokens"] = float(stream_result.output_tokens)
    report.headline["stream_sim_latency_p99_s"] = stream_result.latency.p99_s

    return report
