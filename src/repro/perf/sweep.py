"""Parallel sweep runner with an on-disk result cache.

Figure sweeps evaluate a grid of (model, workload) cells, each serving one
trace on Ouroboros plus the four baselines.  Cells are independent, so they
can fan out across a ``ProcessPoolExecutor``; on a single-core machine (or
with ``max_workers=1``) the runner degrades to the serial path, which reuses
one built Ouroboros system per model exactly like the original grid loop.

Results can additionally be cached on disk keyed by the *content* of the cell:
the canonical dict of every :class:`repro.api.DeploymentSpec` the cell serves
(model, system, full system config, workload incl. request count / seed /
arrival rate).  Re-running a sweep with unchanged inputs then costs one pickle
load per cell.  Caching is off unless a cache directory is supplied (or
``REPRO_RESULT_CACHE_DIR`` is set), because a stale cache must never silently
shadow a code change; the key embeds a schema version that must be bumped when
result semantics change.

Usage::

    from repro.perf import SweepRunner

    runner = SweepRunner()                       # workers = CPU count
    grid = runner.run_grid(("llama-13b",), ("wikitext2",), settings)
    result = grid[("llama-13b", "wikitext2")]["Ours"]
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from ..results import RunResult

#: bump when RunResult semantics or serving behaviour changes incompatibly
#: (2: RunResult grew ttft/latency stats; completion stamped at epoch end;
#:  3: keys are canonical DeploymentSpec dicts;
#:  4: sub-epoch admission splits epochs at arrival boundaries and RunResult
#:     grew per-tenant stats + SLO goodput;
#:  5: pluggable scheduling policies — PipelineConfig grew
#:     scheduling_policy/priority_aging_rate, TenantSpec grew
#:     weight/priority, and admission order is policy-defined;
#:  6: fault-tolerant serving — DeploymentSpec grew a fault plan,
#:     PipelineConfig grew overload-shedding knobs, and RunResult grew
#:     fault/shed accounting;
#:  7: live serving — TenantStats grew queue_depth/admission_wait, so the
#:     pickled per-tenant payload changed shape)
_CACHE_SCHEMA = "7"


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: serve one workload of one model on every system.

    ``systems`` optionally restricts the baseline set run alongside Ouroboros
    (``()`` = Ouroboros only, e.g. for the open-loop arrival sweep, where the
    analytic baselines have no notion of arrival times).
    """

    model: str
    workload: str
    systems: tuple[str, ...] | None = None


def _cell_key(cell: SweepCell, settings) -> str:
    """Content hash of the canonical deployment specs one cell serves."""
    from ..experiments.common import cell_deployments

    specs = cell_deployments(cell.model, cell.workload, settings, systems=cell.systems)
    payload = {
        "schema": _CACHE_SCHEMA,
        "specs": [spec.to_dict() for spec in specs],
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _run_cell(args: tuple[SweepCell, object]) -> tuple[SweepCell, dict[str, RunResult]]:
    """Worker entry point: run every system on one cell (picklable, top level)."""
    from ..experiments.common import run_all_systems

    cell, settings = args
    return cell, run_all_systems(
        cell.model, cell.workload, settings, systems=cell.systems
    )


class SweepRunner:
    """Fan (model, workload) cells across processes, with optional caching."""

    def __init__(
        self,
        max_workers: int | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        if max_workers is None:
            env = os.environ.get("REPRO_SWEEP_PROCS")
            max_workers = int(env) if env else (os.cpu_count() or 1)
        self.max_workers = max(1, max_workers)
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_RESULT_CACHE_DIR") or None
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.cache_hits = 0
        self.cache_misses = 0

    # -------------------------------------------------------------------- cache

    def _cache_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def _cache_load(self, key: str) -> dict[str, RunResult] | None:
        if self.cache_dir is None:
            return None
        path = self._cache_path(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            return None  # corrupt entries are treated as misses

    def _cache_store(self, key: str, results: dict[str, RunResult]) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(key)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as handle:
            pickle.dump(results, handle)
        tmp.replace(path)

    # --------------------------------------------------------------------- runs

    def _run_pairs(
        self, pairs: list[tuple[SweepCell, object]]
    ) -> list[dict[str, RunResult]]:
        """Run (cell, settings) pairs via the cache / process pool / serial path.

        The shared dispatch behind :meth:`run_cells` (one settings, many
        cells) and :meth:`run_variants` (one cell, many settings).  Results
        come back in input order.
        """
        results: list[dict[str, RunResult] | None] = [None] * len(pairs)
        pending: list[int] = []
        for index, (cell, settings) in enumerate(pairs):
            cached = self._cache_load(_cell_key(cell, settings))
            if cached is not None:
                results[index] = cached
                self.cache_hits += 1
            else:
                pending.append(index)
                self.cache_misses += 1

        if pending:
            if self.max_workers > 1 and len(pending) > 1:
                with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                    for index, (_, cell_results) in zip(
                        pending,
                        pool.map(_run_cell, [pairs[index] for index in pending]),
                    ):
                        results[index] = cell_results
                        self._cache_store(_cell_key(*pairs[index]), cell_results)
            else:
                for index, cell_results in self._run_serial(pairs, pending):
                    results[index] = cell_results
                    self._cache_store(_cell_key(*pairs[index]), cell_results)
        return results

    def _run_serial(self, pairs, pending: list[int]):
        """Serial path: run cells in order through the unified entry point.

        Build reuse needs no special casing here any more: `repro.api`
        memoises built systems per (model, system, config), so grid cells
        sharing one settings object build each model once, and arrival-rate
        variants (which differ only in trace knobs) share one built system.
        """
        from ..experiments.common import run_all_systems

        for index in pending:
            cell, settings = pairs[index]
            yield index, run_all_systems(
                cell.model, cell.workload, settings, systems=cell.systems
            )

    def run_cells(
        self, cells: list[SweepCell], settings
    ) -> dict[SweepCell, dict[str, RunResult]]:
        """Run every cell, via the cache / process pool / serial path."""
        flat = self._run_pairs([(cell, settings) for cell in cells])
        return dict(zip(cells, flat))

    def run_variants(
        self, cell: SweepCell, settings_list: list
    ) -> list[dict[str, RunResult]]:
        """Run one cell under several settings variants, in input order.

        This is the sweep shape of the open-loop arrival-rate experiment: the
        (model, workload) pair is fixed and the settings vary (e.g. by
        ``arrival_rate_per_s``).  Variants fan out across the process pool and
        use the on-disk cache exactly like grid cells — the cache key embeds
        the settings, so each variant caches independently.
        """
        return self._run_pairs([(cell, settings) for settings in settings_list])

    def run_specs_daemon(self, specs: list) -> list[dict]:
        """Serve each deployment spec through its own live daemon (fleet mode).

        One :class:`~repro.serving.daemon.ServingDaemon` per spec on
        background threads, each replayed by a protocol client and drained;
        results are result dicts in spec order, bit-for-bit the batch
        ``serve(spec)`` results.  Runs on threads rather than the process
        pool — daemons are I/O-multiplexed around one engine thread each,
        and concurrent starts share ``api.build_deployment``'s memo under
        its lock.
        """
        from ..serving import DaemonFleet

        fleet = DaemonFleet(specs, max_workers=self.max_workers)
        return fleet.run()

    def run_grid(
        self,
        models: tuple[str, ...],
        workloads: tuple[str, ...],
        settings,
    ) -> dict[tuple[str, str], dict[str, RunResult]]:
        """Run the full model x workload grid (Fig. 13/14 shape)."""
        cells = [
            SweepCell(model=model, workload=workload)
            for model in models
            for workload in workloads
        ]
        raw = self.run_cells(cells, settings)
        return {(cell.model, cell.workload): raw[cell] for cell in cells}
