"""Performance infrastructure: parallel sweeps and benchmark telemetry.

:mod:`repro.perf.sweep` provides :class:`SweepRunner`, which fans the
(model, workload) cells of figure sweeps across a ``ProcessPoolExecutor`` with
an optional on-disk result cache keyed by (arch, config, trace spec).

:mod:`repro.perf.bench` times the headline experiments stage by stage and
emits a machine-readable JSON report (``repro bench`` on the command line), so
every PR leaves a perf trajectory behind.
"""

from .bench import BenchReport, run_bench
from .sweep import SweepCell, SweepRunner

__all__ = ["SweepRunner", "SweepCell", "BenchReport", "run_bench"]
