"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that the package can be installed editable in offline environments whose
setuptools/pip combination lacks PEP 517 editable-wheel support
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
